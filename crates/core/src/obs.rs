//! Telemetry instrumentation of the query engine: the workspace-wide
//! metric handles this crate reports into (see the `gbd-telemetry` crate)
//! and the per-search flush that mirrors [`SearchStats`] into them.
//!
//! Counters are flushed **once per finished search** from the scan's
//! already-aggregated [`SearchStats`], not incremented inside the scan
//! loop — so the telemetry stage partition
//! (`gbda_scan_bound_rejected_total + gbda_scan_bound_accepted_total +
//! gbda_scan_rank_rejected_total + gbda_scan_postings_resolved_total +
//! gbda_scan_merged_total == gbda_scan_evaluated_total` per run) is
//! bit-identical to [`SearchStats::stage_partition`] by construction, and
//! the hot loop pays nothing. Latency histograms are fed per query — also
//! on the batch path, *before* [`SearchStats::absorb`] collapses the
//! per-query resolution into totals.

use std::sync::OnceLock;

use gbd_telemetry::{global, metrics_enabled, Counter, Gauge, Histogram};

use crate::search::SearchStats;

/// Handles of every scan/query metric, registered once on first use.
pub(crate) struct ScanMetrics {
    queries: Counter,
    evaluated: Counter,
    bound_rejected: Counter,
    bound_accepted: Counter,
    rank_rejected: Counter,
    postings_resolved: Counter,
    merged: Counter,
    stage2_decided: Counter,
    threshold_accepts: Counter,
    heap_inserts: Counter,
    planned_scans: Counter,
    plan_skipped_bounds: Counter,
    plan_skipped_stage2: Counter,
    plan_postings_first: Counter,
    query_seconds: Histogram,
    flatten_seconds: Histogram,
    scan_seconds: Histogram,
}

pub(crate) fn scan_metrics() -> &'static ScanMetrics {
    static METRICS: OnceLock<ScanMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        ScanMetrics {
            queries: g.counter(
                "gbda_queries_total",
                "Finished searches (threshold, ranked, streaming and dynamic).",
            ),
            evaluated: g.counter("gbda_scan_evaluated_total", "Database graphs scanned."),
            bound_rejected: g.counter(
                "gbda_scan_bound_rejected_total",
                "Graphs rejected by a cascade bound stage alone.",
            ),
            bound_accepted: g.counter(
                "gbda_scan_bound_accepted_total",
                "Graphs accepted by a cascade bound stage alone.",
            ),
            rank_rejected: g.counter(
                "gbda_scan_rank_rejected_total",
                "Graphs rejected by the tightening rank bound of ranked scans.",
            ),
            postings_resolved: g.counter(
                "gbda_scan_postings_resolved_total",
                "Graphs resolved exactly by the inverted-index count filter.",
            ),
            merged: g.counter(
                "gbda_scan_merged_total",
                "Graphs resolved by the exact flat branch-run merge.",
            ),
            stage2_decided: g.counter(
                "gbda_scan_stage2_decided_total",
                "Graphs decided specifically by the stage-2 distinct-run refinement.",
            ),
            threshold_accepts: g.counter(
                "gbda_scan_threshold_accepts_total",
                "Graphs accepted by the per-size phi-threshold comparison alone.",
            ),
            heap_inserts: g.counter(
                "gbda_topk_heap_inserts_total",
                "Candidates admitted into a top-k heap (evicted ones included).",
            ),
            planned_scans: g.counter(
                "gbda_planner_planned_scans_total",
                "Segment scans whose stage order was chosen by the per-query planner.",
            ),
            plan_skipped_bounds: g.counter(
                "gbda_planner_skipped_bounds_total",
                "Planned scans that skipped the bound stages entirely.",
            ),
            plan_skipped_stage2: g.counter(
                "gbda_planner_skipped_stage2_total",
                "Planned scans that skipped the stage-2 refinement.",
            ),
            plan_postings_first: g.counter(
                "gbda_planner_postings_first_total",
                "Planned scans that accumulated stage-3 postings eagerly per chunk.",
            ),
            query_seconds: g.histogram("gbda_query_seconds", "End-to-end latency of one search."),
            flatten_seconds: g.histogram(
                "gbda_flatten_seconds",
                "Per-query branch extraction and flattening latency.",
            ),
            scan_seconds: g.histogram(
                "gbda_scan_seconds",
                "Per-query database scan latency (all shards, wall clock).",
            ),
        }
    })
}

/// Mirrors one finished search's [`SearchStats`] into the workspace
/// telemetry: stage-partition counters plus the per-query latency
/// histograms. Called once per query — including for every query of a
/// batch, before absorption — and by the dynamic engine's segment scans.
/// No-op below [`gbd_telemetry::TelemetryLevel::Metrics`].
pub(crate) fn record_search(stats: &SearchStats, query_seconds: f64) {
    if !metrics_enabled() {
        return;
    }
    let m = scan_metrics();
    m.queries.inc();
    m.evaluated.add(stats.evaluated as u64);
    m.bound_rejected.add(stats.bound_rejected as u64);
    m.bound_accepted.add(stats.bound_accepted as u64);
    m.rank_rejected.add(stats.rank_rejected as u64);
    m.postings_resolved.add(stats.postings_resolved as u64);
    m.merged.add(stats.merged as u64);
    m.stage2_decided.add(stats.stage2_decided as u64);
    m.threshold_accepts.add(stats.threshold_accepts as u64);
    m.heap_inserts.add(stats.heap_inserts as u64);
    m.planned_scans.add(stats.planned_scans as u64);
    m.plan_skipped_bounds.add(stats.plan_skipped_bounds as u64);
    m.plan_skipped_stage2.add(stats.plan_skipped_stage2 as u64);
    m.plan_postings_first.add(stats.plan_postings_first as u64);
    m.query_seconds.record(query_seconds);
    // Paths that do not time a phase leave it at exactly 0.0 (a measured
    // phase never is); skip those so the distributions stay meaningful.
    if stats.flatten_seconds > 0.0 {
        m.flatten_seconds.record(stats.flatten_seconds);
    }
    if stats.scan_seconds > 0.0 {
        m.scan_seconds.record(stats.scan_seconds);
    }
}

/// Handles of the posterior-cache metrics (hit/miss of the shared memo).
pub(crate) struct CacheMetrics {
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
}

pub(crate) fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        CacheMetrics {
            hits: g.counter(
                "gbda_posterior_cache_hits_total",
                "Posterior lookups answered from the shared memo.",
            ),
            misses: g.counter(
                "gbda_posterior_cache_misses_total",
                "Posterior lookups that required a genuine evaluation.",
            ),
        }
    })
}

/// Handles of the dynamic-layer metrics (delta mutations and compaction).
pub(crate) struct DynamicMetrics {
    inserts: Counter,
    removes: Counter,
    compactions: Counter,
    compaction_seconds: Gauge,
    delta_graphs: Gauge,
    tombstones: Gauge,
}

fn dynamic_metrics() -> &'static DynamicMetrics {
    static METRICS: OnceLock<DynamicMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        DynamicMetrics {
            inserts: g.counter(
                "gbda_dynamic_inserts_total",
                "Graphs appended to the delta segment.",
            ),
            removes: g.counter(
                "gbda_dynamic_removes_total",
                "Graphs tombstoned in the dynamic database.",
            ),
            compactions: g.counter(
                "gbda_dynamic_compactions_total",
                "Compactions folding the delta into a fresh base segment.",
            ),
            compaction_seconds: g.gauge(
                "gbda_dynamic_compaction_seconds",
                "Duration of the most recent compaction.",
            ),
            delta_graphs: g.gauge(
                "gbda_dynamic_delta_graphs",
                "Graphs currently in the append-only delta segment.",
            ),
            tombstones: g.gauge(
                "gbda_dynamic_tombstones",
                "Tombstoned (removed but not yet compacted) graphs.",
            ),
        }
    })
}

/// Re-publishes the delta/tombstone level gauges from authoritative state
/// — the resync hook recovery uses after a metrics-quiet WAL replay, so
/// the gauges describe the recovered database without the replay having
/// counted historical mutations as fresh ones.
pub(crate) fn record_dynamic_levels(delta_graphs: usize, tombstones: usize) {
    if !metrics_enabled() {
        return;
    }
    let m = dynamic_metrics();
    m.delta_graphs.set(delta_graphs as f64);
    m.tombstones.set(tombstones as f64);
}

/// Books one dynamic-database insert plus the resulting delta/tombstone
/// levels.
pub(crate) fn record_dynamic_insert(delta_graphs: usize, tombstones: usize) {
    if !metrics_enabled() {
        return;
    }
    let m = dynamic_metrics();
    m.inserts.inc();
    m.delta_graphs.set(delta_graphs as f64);
    m.tombstones.set(tombstones as f64);
}

/// Books one dynamic-database remove plus the resulting delta/tombstone
/// levels.
pub(crate) fn record_dynamic_remove(delta_graphs: usize, tombstones: usize) {
    if !metrics_enabled() {
        return;
    }
    let m = dynamic_metrics();
    m.removes.inc();
    m.delta_graphs.set(delta_graphs as f64);
    m.tombstones.set(tombstones as f64);
}

/// Books one compaction: its duration and the post-compaction (empty)
/// delta/tombstone levels.
pub(crate) fn record_dynamic_compact(seconds: f64, delta_graphs: usize, tombstones: usize) {
    if !metrics_enabled() {
        return;
    }
    let m = dynamic_metrics();
    m.compactions.inc();
    m.compaction_seconds.set(seconds);
    m.delta_graphs.set(delta_graphs as f64);
    m.tombstones.set(tombstones as f64);
}

/// Handles of the snapshot-isolation metrics (generation publication and
/// the background compactor of the concurrent engine).
pub(crate) struct GenerationMetrics {
    published: Counter,
    epoch: Gauge,
    live_graphs: Gauge,
    background_compactions: Counter,
}

fn generation_metrics() -> &'static GenerationMetrics {
    static METRICS: OnceLock<GenerationMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        GenerationMetrics {
            published: g.counter(
                "gbda_generations_published_total",
                "Immutable generations published for snapshot-isolated readers.",
            ),
            epoch: g.gauge(
                "gbda_generation_epoch",
                "Epoch of the most recently published generation.",
            ),
            live_graphs: g.gauge(
                "gbda_generation_live_graphs",
                "Live graphs in the most recently published generation.",
            ),
            background_compactions: g.counter(
                "gbda_background_compactions_total",
                "Compactions run by the concurrent engine's background worker.",
            ),
        }
    })
}

/// Books one generation publication: the new epoch and its live-set size.
pub(crate) fn record_generation_publish(epoch: u64, live_graphs: usize) {
    if !metrics_enabled() {
        return;
    }
    let m = generation_metrics();
    m.published.inc();
    m.epoch.set(epoch as f64);
    m.live_graphs.set(live_graphs as f64);
}

/// Books one compaction performed by the background compactor thread.
pub(crate) fn record_background_compaction() {
    if !metrics_enabled() {
        return;
    }
    generation_metrics().background_compactions.inc();
}
