//! Effectiveness metrics: precision, recall and F1-score (Section VII-C2).
//!
//! This module measures *paper effectiveness* of a result set against the
//! ground truth; it is unrelated to runtime telemetry, which lives in the
//! `gbd-telemetry` crate (the module was renamed from `metrics` to keep
//! that distinction unambiguous — the old path remains as a deprecated
//! re-export for one release).

/// Confusion counts of one similarity-search result against the ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Returned graphs that are truly similar.
    pub true_positives: usize,
    /// Returned graphs that are not similar.
    pub false_positives: usize,
    /// Similar graphs that were not returned.
    pub false_negatives: usize,
}

impl Confusion {
    /// Builds the confusion counts from a returned set and the ground-truth
    /// positive set (both as sorted-or-not index lists).
    ///
    /// Sorts both lists once and counts by a two-pointer merge —
    /// `O((n + m) log (n + m))` instead of the quadratic
    /// one-`contains`-per-element scan — with membership semantics
    /// identical to the naive version (each occurrence counts, duplicates
    /// included).
    pub fn from_sets(returned: &[usize], positives: &[usize]) -> Self {
        let mut returned_sorted = returned.to_vec();
        let mut positives_sorted = positives.to_vec();
        returned_sorted.sort_unstable();
        positives_sorted.sort_unstable();
        let mut confusion = Confusion::default();
        let mut p = 0;
        for &r in &returned_sorted {
            while positives_sorted.get(p).is_some_and(|&value| value < r) {
                p += 1;
            }
            if positives_sorted.get(p) == Some(&r) {
                confusion.true_positives += 1;
            } else {
                confusion.false_positives += 1;
            }
        }
        let mut r = 0;
        for &p in &positives_sorted {
            while returned_sorted.get(r).is_some_and(|&value| value < p) {
                r += 1;
            }
            if returned_sorted.get(r) != Some(&p) {
                confusion.false_negatives += 1;
            }
        }
        confusion
    }

    /// Precision `TP / (TP + FP)`. Defined as 1 when nothing was returned and
    /// nothing should have been returned, and 0 when something was returned
    /// but nothing was correct.
    pub fn precision(&self) -> f64 {
        let denominator = self.true_positives + self.false_positives;
        if denominator == 0 {
            if self.false_negatives == 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.true_positives as f64 / denominator as f64
        }
    }

    /// Recall `TP / (TP + FN)`. Defined as 1 when the ground-truth answer set
    /// is empty.
    pub fn recall(&self) -> f64 {
        let denominator = self.true_positives + self.false_negatives;
        if denominator == 0 {
            1.0
        } else {
            self.true_positives as f64 / denominator as f64
        }
    }

    /// F1-score: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Component-wise sum, used to micro-average over queries.
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            true_positives: self.true_positives + other.true_positives,
            false_positives: self.false_positives + other.false_positives,
            false_negatives: self.false_negatives + other.false_negatives,
        }
    }
}

/// Micro-averaged metrics over many queries.
pub fn aggregate<'a>(confusions: impl IntoIterator<Item = &'a Confusion>) -> Confusion {
    confusions
        .into_iter()
        .fold(Confusion::default(), |acc, c| acc.merge(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_result() {
        let c = Confusion::from_sets(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn partial_result() {
        let c = Confusion::from_sets(&[1, 2, 9], &[1, 2, 3, 4]);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.false_negatives, 2);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        let expected_f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((c.f1() - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn empty_cases_follow_the_conventions() {
        let both_empty = Confusion::from_sets(&[], &[]);
        assert_eq!(both_empty.precision(), 1.0);
        assert_eq!(both_empty.recall(), 1.0);
        assert_eq!(both_empty.f1(), 1.0);

        let nothing_returned = Confusion::from_sets(&[], &[1, 2]);
        assert_eq!(nothing_returned.precision(), 0.0);
        assert_eq!(nothing_returned.recall(), 0.0);
        assert_eq!(nothing_returned.f1(), 0.0);

        let nothing_expected = Confusion::from_sets(&[1], &[]);
        assert_eq!(nothing_expected.precision(), 0.0);
        assert_eq!(nothing_expected.recall(), 1.0);
    }

    #[test]
    fn sort_and_merge_matches_the_naive_contains_semantics() {
        // Reference: the pre-optimization quadratic implementation.
        fn naive(returned: &[usize], positives: &[usize]) -> Confusion {
            let mut c = Confusion::default();
            for r in returned {
                if positives.contains(r) {
                    c.true_positives += 1;
                } else {
                    c.false_positives += 1;
                }
            }
            for p in positives {
                if !returned.contains(p) {
                    c.false_negatives += 1;
                }
            }
            c
        }
        let cases: [(&[usize], &[usize]); 6] = [
            (&[9, 1, 5, 1], &[1, 7, 5]), // unsorted, duplicate in returned
            (&[2, 2, 2], &[2]),          // duplicates all matching
            (&[], &[3, 1]),              // nothing returned
            (&[4, 4], &[]),              // nothing expected
            (&[0, 1, 2, 3], &[3, 2, 1, 0]),
            (&[10, 20, 30], &[15, 25, 35]),
        ];
        for (returned, positives) in cases {
            assert_eq!(
                Confusion::from_sets(returned, positives),
                naive(returned, positives),
                "diverges on returned {returned:?}, positives {positives:?}"
            );
        }
    }

    #[test]
    fn aggregation_micro_averages() {
        let a = Confusion::from_sets(&[1], &[1, 2]);
        let b = Confusion::from_sets(&[3, 4], &[3]);
        let merged = aggregate([&a, &b]);
        assert_eq!(merged.true_positives, 2);
        assert_eq!(merged.false_positives, 1);
        assert_eq!(merged.false_negatives, 1);
        assert!((merged.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((merged.recall() - 2.0 / 3.0).abs() < 1e-12);
    }
}
