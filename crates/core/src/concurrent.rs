//! Snapshot-isolated concurrent serving over the dynamic layer:
//! [`Generation`], [`SnapshotReader`] and [`ConcurrentEngine`].
//!
//! [`crate::DynamicEngine`] rules out overlapping queries and mutations at compile
//! time — a query borrows the [`DynamicDatabase`] shared, a mutation
//! borrows it exclusively. A serving workload needs both *at once*:
//! thousands of readers while inserts, removes and compaction proceed.
//! This module adds epoch-style snapshot isolation on top of the same scan
//! machinery:
//!
//! * A **[`Generation`]** is an immutable snapshot of one dynamic state:
//!   the shared base segment (an [`Arc`] — never copied), the id list and
//!   catalog (shared the same way), plus a frozen copy of the delta segment
//!   and both tombstone bitsets (`O(delta)`, bounded by the compaction
//!   threshold). Each carries a monotonically increasing **epoch**.
//! * A **[`SnapshotReader`]** publishes generations behind a pointer cell.
//!   Readers *pin* the current generation — one [`Arc`] clone under a
//!   briefly-held lock, no allocation — and every query then runs entirely
//!   against that pinned, immutable state: a reader never blocks a writer,
//!   a writer never tears a reader's view.
//! * A **[`ConcurrentEngine`]** owns the writer side: `insert`/`remove`
//!   mutate the single writer-locked [`DynamicDatabase`] and publish a new
//!   generation per mutation; `compact` folds the delta into a fresh base
//!   with a stop-the-world window of zero (in-flight readers finish on
//!   their pinned pre-compaction generation, new pins see the compacted
//!   one). An optional background worker compacts once the delta crosses a
//!   threshold, off the writer's latency path.
//!
//! The consistency guarantee is exactly the workspace's equivalence
//! invariant, lifted to concurrency: **every query result is bit-identical
//! to what a fresh static [`crate::QueryEngine`] would return over the live
//! set of *some* published generation** — the one the reader pinned. The
//! interleaving proptests in `tests/serving.rs` verify this across
//! Standard/V1/V2 × threshold/top-k/streaming.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use parking_lot::{Mutex, RwLock};

use gbd_graph::{BranchCatalog, Graph, LabelAlphabets};

use crate::config::GbdaConfig;
use crate::database::GraphDatabase;
use crate::dynamic::{
    fixed_extended_size_for, DeltaSegment, DynamicDatabase, DynamicOutcome, DynamicView, ScanState,
    Tombstones,
};
use crate::error::EngineResult;
use crate::offline::OfflineIndex;
use crate::search::SearchStats;
use crate::topk::DynamicTopKOutcome;

/// Epochs whose GBDA-V1 sample memo is retained before the map is pruned;
/// purely a bound on memo memory — entries are recomputed on miss.
const V1_MEMO_CAPACITY: usize = 32;

/// An immutable snapshot of one dynamic-layer state, published at a fixed
/// **epoch**.
///
/// The base segment, its id list and the branch catalog are shared with the
/// writer via [`Arc`] (the writer replaces them wholesale on compaction and
/// clones-on-grow the catalog, so sharing is safe); the delta segment and
/// the tombstone bitsets are frozen copies taken at publication. A pinned
/// generation therefore never changes — queries against it are oblivious
/// to concurrent inserts, removes and compactions.
pub struct Generation {
    epoch: u64,
    base: Arc<GraphDatabase>,
    base_ids: Arc<Vec<u64>>,
    base_tombstones: Tombstones,
    delta: DeltaSegment,
    delta_ids: Vec<u64>,
    delta_tombstones: Tombstones,
    catalog: Arc<BranchCatalog>,
    alphabets: LabelAlphabets,
    max_vertices_hint: usize,
}

impl Generation {
    /// Captures the database's current state as a generation at `epoch`.
    fn capture(database: &DynamicDatabase, epoch: u64) -> Self {
        Generation {
            epoch,
            base: Arc::clone(database.base_arc()),
            base_ids: Arc::clone(database.base_ids_arc()),
            base_tombstones: database.base_tombstones().clone(),
            delta: database.delta().clone(),
            delta_ids: database.delta_ids().to_vec(),
            delta_tombstones: database.delta_tombstones().clone(),
            catalog: Arc::clone(database.catalog_arc()),
            alphabets: database.alphabets(),
            max_vertices_hint: database.max_vertices_hint(),
        }
    }

    /// The publication epoch: 0 for the initial generation, then +1 per
    /// published mutation or compaction.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of live graphs in this generation.
    pub fn len(&self) -> usize {
        self.view_len()
    }

    /// Returns `true` when no graph is live in this generation.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Label alphabet sizes of the probabilistic model.
    pub fn alphabets(&self) -> LabelAlphabets {
        self.alphabets
    }

    /// Iterates over `(id, graph)` for every live graph in **canonical
    /// order** (base by index, then delta by insertion order) — the order a
    /// fresh rebuild of this generation's live set preserves, which is what
    /// the consistency checks rebuild from.
    pub fn live_graphs(&self) -> impl Iterator<Item = (u64, &Graph)> + '_ {
        let base = (0..self.base.len())
            .filter(|&i| !self.base_tombstones.get(i))
            .map(|i| (self.base_ids[i], self.base.graph(i)));
        let delta = (0..self.delta.len())
            .filter(|&i| !self.delta_tombstones.get(i))
            .map(|i| (self.delta_ids[i], self.delta.graph(i)));
        base.chain(delta)
    }

    /// Live graph ids in canonical order.
    pub fn live_ids(&self) -> Vec<u64> {
        self.live_graphs().map(|(id, _)| id).collect()
    }
}

impl DynamicView for Generation {
    fn view_base(&self) -> &GraphDatabase {
        &self.base
    }

    fn view_base_ids(&self) -> &[u64] {
        &self.base_ids
    }

    fn view_base_tombstones(&self) -> &Tombstones {
        &self.base_tombstones
    }

    fn view_delta(&self) -> &DeltaSegment {
        &self.delta
    }

    fn view_delta_ids(&self) -> &[u64] {
        &self.delta_ids
    }

    fn view_delta_tombstones(&self) -> &Tombstones {
        &self.delta_tombstones
    }

    fn view_catalog(&self) -> &BranchCatalog {
        &self.catalog
    }

    fn view_max_vertices_hint(&self) -> usize {
        self.max_vertices_hint
    }
}

/// The reader half of the concurrent serving layer: a publication cell of
/// [`Generation`]s plus the shared scan machinery that runs queries over
/// whichever generation a reader pinned.
///
/// Pinning ([`Self::pin`]) is one `Arc` clone under a read lock held for
/// nanoseconds — readers never wait on a scan, a mutation or a compaction,
/// and [`Self::publish`] (called by the writer) swaps the cell under the
/// write lock without waiting for in-flight queries, which keep their
/// pinned `Arc` until they finish. All shared scan state (posterior memo,
/// decision tables, planner profile) is internally synchronized and safe
/// to share across generations: decision tables are keyed by the
/// generation-dependent vertex cap, and the planner only reroutes cascade
/// stages, which never changes results.
pub struct SnapshotReader {
    index: OfflineIndex,
    state: ScanState,
    cell: RwLock<Arc<Generation>>,
    /// Per-epoch GBDA-V1 `|V'1|` samples. A memo, not a cache of truth:
    /// the sample is a deterministic function of the seed and the pinned
    /// generation's live vertex counts, so a pruned entry is simply
    /// recomputed bit-identically.
    v1_sizes: RwLock<HashMap<u64, usize>>,
}

impl SnapshotReader {
    /// Publishes the database's current state as epoch 0 and readies the
    /// scan machinery. Applies `config.telemetry` via
    /// [`gbd_telemetry::escalate_level`], like every engine constructor.
    pub fn new(database: &DynamicDatabase, index: OfflineIndex, config: GbdaConfig) -> Self {
        gbd_telemetry::escalate_level(config.telemetry);
        let generation = Arc::new(Generation::capture(database, 0));
        crate::obs::record_generation_publish(0, generation.len());
        SnapshotReader {
            index,
            state: ScanState::new(config),
            cell: RwLock::new(generation),
            v1_sizes: RwLock::new(HashMap::new()),
        }
    }

    /// The configuration queries run with.
    pub fn config(&self) -> &GbdaConfig {
        &self.state.config
    }

    /// The offline index queries run against.
    pub fn index(&self) -> &OfflineIndex {
        &self.index
    }

    /// Pins the current generation: one `Arc` clone, after which the
    /// returned snapshot is immune to concurrent mutation and compaction.
    pub fn pin(&self) -> Arc<Generation> {
        Arc::clone(&self.cell.read())
    }

    /// The epoch of the currently published generation.
    pub fn epoch(&self) -> u64 {
        self.cell.read().epoch
    }

    /// Publishes the database's current state as the next generation.
    ///
    /// Callers must hold the writer lock of the owning engine across the
    /// mutation *and* this publish, so epochs order identically to the
    /// mutation history; the cell's own write lock only orders the pointer
    /// swap against concurrent [`Self::pin`]s.
    pub fn publish(&self, database: &DynamicDatabase) -> u64 {
        let mut cell = self.cell.write();
        let epoch = cell.epoch + 1;
        *cell = Arc::new(Generation::capture(database, epoch));
        let live = cell.len();
        drop(cell);
        crate::obs::record_generation_publish(epoch, live);
        epoch
    }

    /// The GBDA-V1 fixed `|V'1|` for one generation (`None` for the other
    /// variants), memoized by epoch.
    fn fixed_extended_size(&self, generation: &Generation) -> Option<usize> {
        if !matches!(
            self.state.config.variant,
            crate::config::GbdaVariant::AverageExtendedSize { .. }
        ) {
            return None;
        }
        if let Some(&size) = self.v1_sizes.read().get(&generation.epoch) {
            return Some(size);
        }
        let size = fixed_extended_size_for(generation, &self.state.config)?;
        let mut memo = self.v1_sizes.write();
        if memo.len() >= V1_MEMO_CAPACITY {
            memo.clear();
        }
        memo.insert(generation.epoch, size);
        Some(size)
    }

    /// Runs Algorithm 1 against a pinned generation. Bit-identical to a
    /// [`crate::DynamicEngine`] (or a fresh static [`crate::QueryEngine`]) over
    /// that generation's live set.
    pub fn search_pinned(&self, generation: &Generation, query: &Graph) -> DynamicOutcome {
        let fixed = self.fixed_extended_size(generation);
        self.state.search(generation, &self.index, fixed, query)
    }

    /// Pins the current generation and runs Algorithm 1 against it.
    pub fn search(&self, query: &Graph) -> DynamicOutcome {
        self.search_pinned(&self.pin(), query)
    }

    /// Runs a ranked query against a pinned generation (see
    /// [`crate::DynamicEngine::search_top_k`] for the equivalence guarantee).
    pub fn search_top_k_pinned(
        &self,
        generation: &Generation,
        query: &Graph,
        k: usize,
    ) -> DynamicTopKOutcome {
        let fixed = self.fixed_extended_size(generation);
        self.state
            .search_top_k(generation, &self.index, fixed, query, k)
    }

    /// Pins the current generation and runs a ranked query against it.
    pub fn search_top_k(&self, query: &Graph, k: usize) -> DynamicTopKOutcome {
        self.search_top_k_pinned(&self.pin(), query, k)
    }

    /// Streams Algorithm 1 hits from a pinned generation as the scan finds
    /// them (see [`crate::DynamicEngine::search_streaming`]).
    pub fn search_streaming_pinned<F>(
        &self,
        generation: &Generation,
        query: &Graph,
        on_match: F,
    ) -> SearchStats
    where
        F: FnMut(u64, Option<f64>),
    {
        let fixed = self.fixed_extended_size(generation);
        self.state
            .search_streaming(generation, &self.index, fixed, query, on_match)
    }

    /// Pins the current generation and streams hits from it.
    pub fn search_streaming<F>(&self, query: &Graph, on_match: F) -> SearchStats
    where
        F: FnMut(u64, Option<f64>),
    {
        self.search_streaming_pinned(&self.pin(), query, on_match)
    }
}

/// What the writer tells the background compactor.
enum Signal {
    /// The delta crossed the compaction threshold after a mutation.
    Compact,
    /// The engine is shutting down; exit the worker loop.
    Shutdown,
}

/// The state shared between the engine handle and its background compactor.
struct Shared {
    reader: SnapshotReader,
    writer: Mutex<DynamicDatabase>,
    /// Delta length at which a mutation signals the background compactor
    /// (`None` without a compactor: compaction is explicit only).
    compact_threshold: Option<usize>,
}

impl Shared {
    /// Folds the delta and tombstones into a fresh base and publishes the
    /// compacted generation. Readers are never stopped: in-flight queries
    /// finish on their pinned pre-compaction generation (whose `Arc`s keep
    /// the old base alive), new pins see the compacted one.
    fn compact_now(&self) -> usize {
        let mut database = self.writer.lock();
        let survivors = database.compact();
        self.reader.publish(&database);
        survivors
    }

    /// The background variant: skips the rebuild when a competing explicit
    /// compaction already emptied the delta and tombstones (signals
    /// coalesce, so a burst of inserts triggers one compaction, not one
    /// per insert).
    fn compact_in_background(&self) {
        let mut database = self.writer.lock();
        if database.delta().is_empty() && database.tombstone_count() == 0 {
            return;
        }
        database.compact();
        self.reader.publish(&database);
        crate::obs::record_background_compaction();
    }
}

/// A thread-safe serving engine over the dynamic layer: snapshot-isolated
/// readers, a mutex-serialized writer, and (optionally) a background
/// compaction worker.
///
/// All methods take `&self`; share the engine across threads with
/// [`Arc<ConcurrentEngine>`]. Readers ([`Self::search`],
/// [`Self::search_top_k`], [`Self::search_streaming`], or [`Self::pin`] +
/// the `_pinned` variants on [`Self::reader`]) never take the writer lock;
/// writers ([`Self::insert`], [`Self::remove`], [`Self::compact`])
/// serialize on it and publish a new [`Generation`] before returning, so a
/// mutation is visible to every reader that pins afterwards
/// (read-your-writes for the mutating thread).
///
/// Dropping the engine shuts the background compactor down gracefully.
pub struct ConcurrentEngine {
    shared: Arc<Shared>,
    signals: Option<mpsc::Sender<Signal>>,
    compactor: Option<JoinHandle<()>>,
}

impl ConcurrentEngine {
    /// Creates an engine without a background compactor: compaction runs
    /// only on explicit [`Self::compact`] calls.
    pub fn new(database: DynamicDatabase, index: OfflineIndex, config: GbdaConfig) -> Self {
        ConcurrentEngine {
            shared: Arc::new(Shared {
                reader: SnapshotReader::new(&database, index, config),
                writer: Mutex::new(database),
                compact_threshold: None,
            }),
            signals: None,
            compactor: None,
        }
    }

    /// Creates an engine with a background compaction worker: a mutation
    /// that leaves at least `delta_threshold` graphs in the delta segment
    /// signals the worker, which compacts off the writer's latency path.
    /// Signals coalesce — a burst of inserts triggers one compaction.
    /// `delta_threshold` is clamped to at least 1.
    pub fn with_auto_compact(
        database: DynamicDatabase,
        index: OfflineIndex,
        config: GbdaConfig,
        delta_threshold: usize,
    ) -> Self {
        let shared = Arc::new(Shared {
            reader: SnapshotReader::new(&database, index, config),
            writer: Mutex::new(database),
            compact_threshold: Some(delta_threshold.max(1)),
        });
        let (tx, rx) = mpsc::channel();
        let worker_shared = Arc::clone(&shared);
        let compactor = std::thread::Builder::new()
            .name("gbda-compactor".into())
            .spawn(move || compactor_loop(worker_shared, rx))
            .expect("spawning the compactor thread");
        ConcurrentEngine {
            shared,
            signals: Some(tx),
            compactor: Some(compactor),
        }
    }

    /// The reader half, for pinning generations explicitly and running the
    /// `_pinned` query variants.
    pub fn reader(&self) -> &SnapshotReader {
        &self.shared.reader
    }

    /// The configuration queries run with.
    pub fn config(&self) -> &GbdaConfig {
        self.shared.reader.config()
    }

    /// Pins the currently published generation.
    pub fn pin(&self) -> Arc<Generation> {
        self.shared.reader.pin()
    }

    /// Number of live graphs in the currently published generation.
    pub fn len(&self) -> usize {
        self.pin().len()
    }

    /// Returns `true` when the currently published generation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a graph and publishes the new generation; returns the stable
    /// id. May signal the background compactor (never compacts inline).
    pub fn insert(&self, graph: Graph) -> u64 {
        let (id, compact_due) = {
            let mut database = self.shared.writer.lock();
            let id = database.insert(graph);
            self.shared.reader.publish(&database);
            let due = self
                .shared
                .compact_threshold
                .is_some_and(|t| database.delta().len() >= t);
            (id, due)
        };
        if compact_due {
            self.signal_compact();
        }
        id
    }

    /// Removes a graph by id and publishes the new generation.
    ///
    /// # Errors
    /// [`crate::EngineError::UnknownGraphId`] when the id never existed or
    /// was already removed; nothing is published.
    pub fn remove(&self, id: u64) -> EngineResult<()> {
        let mut database = self.shared.writer.lock();
        database.remove(id)?;
        self.shared.reader.publish(&database);
        Ok(())
    }

    /// Compacts synchronously on the calling thread and publishes the
    /// compacted generation; returns the number of surviving graphs.
    /// Readers never stop: in-flight queries finish on their pinned
    /// pre-compaction generation.
    pub fn compact(&self) -> usize {
        self.shared.compact_now()
    }

    /// Runs Algorithm 1 against the current generation (pin + scan).
    pub fn search(&self, query: &Graph) -> DynamicOutcome {
        self.shared.reader.search(query)
    }

    /// Runs a ranked query against the current generation.
    pub fn search_top_k(&self, query: &Graph, k: usize) -> DynamicTopKOutcome {
        self.shared.reader.search_top_k(query, k)
    }

    /// Streams hits from the current generation as the scan finds them.
    pub fn search_streaming<F>(&self, query: &Graph, on_match: F) -> SearchStats
    where
        F: FnMut(u64, Option<f64>),
    {
        self.shared.reader.search_streaming(query, on_match)
    }

    fn signal_compact(&self) {
        if let Some(signals) = &self.signals {
            // A send can only fail after the worker exited, which only
            // happens on shutdown; a lost signal is then harmless.
            let _ = signals.send(Signal::Compact);
        }
    }
}

impl Drop for ConcurrentEngine {
    fn drop(&mut self) {
        if let Some(signals) = self.signals.take() {
            let _ = signals.send(Signal::Shutdown);
        }
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
    }
}

/// The background compactor: waits for signals, coalesces bursts, and
/// compacts under the writer lock. Exits on [`Signal::Shutdown`] or when
/// every sender is gone.
fn compactor_loop(shared: Arc<Shared>, signals: mpsc::Receiver<Signal>) {
    while let Ok(signal) = signals.recv() {
        match signal {
            Signal::Shutdown => return,
            Signal::Compact => {
                // Coalesce the burst that accumulated while we were idle
                // (or compacting): one pass serves them all.
                loop {
                    match signals.try_recv() {
                        Ok(Signal::Shutdown) => return,
                        Ok(Signal::Compact) => continue,
                        Err(_) => break,
                    }
                }
                shared.compact_in_background();
            }
        }
    }
}

// The compile-time contract behind `Arc<ConcurrentEngine>` sharing: every
// piece of shared state is internally synchronized.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentEngine>();
    assert_send_sync::<SnapshotReader>();
    assert_send_sync::<Generation>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GbdaVariant;
    use crate::engine::QueryEngine;
    use gbd_graph::GeneratorConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graphs(seed: u64, count: usize, size: usize) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        GeneratorConfig::new(size, 2.2)
            .with_alphabets(LabelAlphabets::new(6, 3))
            .generate_many(count, &mut rng)
            .unwrap()
    }

    fn setup() -> (DynamicDatabase, OfflineIndex, GbdaConfig) {
        let base = GraphDatabase::from_graphs(graphs(21, 16, 12));
        let config = GbdaConfig::new(4, 0.7).with_sample_pairs(200);
        let index = OfflineIndex::build(&base, &config).unwrap();
        (DynamicDatabase::new(base), index, config)
    }

    /// A pinned generation is immune to inserts, removes and compactions
    /// published after the pin.
    #[test]
    fn pinned_generations_are_snapshot_isolated() {
        let (database, index, config) = setup();
        let engine = ConcurrentEngine::new(database, index, config);
        let query = graphs(5, 1, 12).pop().unwrap();

        let old = engine.pin();
        assert_eq!(old.epoch(), 0);
        let old_ids = old.live_ids();
        let old_outcome = engine.reader().search_pinned(&old, &query);

        for g in graphs(31, 6, 11) {
            engine.insert(g);
        }
        engine.remove(3).unwrap();
        engine.compact();

        // The pinned snapshot still answers from the pre-mutation state.
        assert_eq!(old.live_ids(), old_ids);
        let replay = engine.reader().search_pinned(&old, &query);
        assert_eq!(replay.ids, old_outcome.ids);
        assert_eq!(replay.matches, old_outcome.matches);
        for (a, b) in replay.posteriors.iter().zip(&old_outcome.posteriors) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // A fresh pin sees all of it, with a strictly larger epoch.
        let new = engine.pin();
        assert_eq!(new.epoch(), 8, "6 inserts + 1 remove + 1 compaction");
        assert_eq!(new.len(), 21);
        assert!(!new.live_ids().contains(&3));
        assert_ne!(new.live_ids(), old_ids);
    }

    /// Reads through the concurrent engine are bit-identical to a fresh
    /// static engine over the pinned generation's live set — per variant.
    #[test]
    fn concurrent_reads_match_fresh_static_engines() {
        for variant in [
            GbdaVariant::Standard,
            GbdaVariant::AverageExtendedSize { sample_graphs: 4 },
            GbdaVariant::WeightedGbd { weight: 0.5 },
        ] {
            let (database, index, config) = setup();
            let config = config.with_variant(variant);
            let engine = ConcurrentEngine::new(database, index, config.clone());
            for g in graphs(47, 5, 13) {
                engine.insert(g);
            }
            engine.remove(2).unwrap();
            engine.remove(18).unwrap();

            let generation = engine.pin();
            let survivors: Vec<Graph> = generation.live_graphs().map(|(_, g)| g.clone()).collect();
            let ids = generation.live_ids();
            let fresh = GraphDatabase::with_alphabets(survivors, generation.alphabets());
            let static_engine = QueryEngine::new(&fresh, &engine.reader().index, config);

            let query = graphs(7, 1, 12).pop().unwrap();
            let expected = static_engine.search(&query);
            let got = engine.search(&query);
            let expected_ids: Vec<u64> = expected.matches.iter().map(|&i| ids[i]).collect();
            assert_eq!(got.matches, expected_ids, "variant {variant:?}");
            for (a, b) in got.posteriors.iter().zip(&expected.posteriors) {
                assert_eq!(a.to_bits(), b.to_bits(), "variant {variant:?}");
            }

            let expected_top = static_engine.search_top_k(&query, 5);
            let got_top = engine.search_top_k(&query, 5);
            assert_eq!(got_top.hits.len(), expected_top.hits.len());
            for (a, b) in got_top.hits.iter().zip(&expected_top.hits) {
                assert_eq!(a.id, ids[b.id], "variant {variant:?}");
                assert_eq!(a.posterior.to_bits(), b.posterior.to_bits());
            }

            let mut streamed = Vec::new();
            engine.search_streaming(&query, |id, _| streamed.push(id));
            assert_eq!(streamed, got.matches, "variant {variant:?}");
        }
    }

    /// Readers pinned across a mutation stream always observe a published
    /// generation, never a torn intermediate.
    #[test]
    fn readers_under_writes_observe_only_published_generations() {
        let (database, index, config) = setup();
        let engine = Arc::new(ConcurrentEngine::new(database, index, config));
        let query = graphs(9, 1, 12).pop().unwrap();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let query = query.clone();
                std::thread::spawn(move || {
                    let mut observations = Vec::new();
                    for _ in 0..40 {
                        let generation = engine.pin();
                        let outcome = engine.reader().search_pinned(&generation, &query);
                        observations.push((generation, outcome));
                    }
                    observations
                })
            })
            .collect();
        for (round, g) in graphs(63, 12, 11).into_iter().enumerate() {
            let id = engine.insert(g);
            if round % 3 == 2 {
                engine.remove(id).unwrap();
            }
            if round % 5 == 4 {
                engine.compact();
            }
        }
        for reader in readers {
            for (generation, outcome) in reader.join().unwrap() {
                // The outcome's scanned-id list is the pinned generation's
                // live set — the snapshot didn't shift mid-query.
                assert_eq!(outcome.ids, generation.live_ids());
                let replay = engine.reader().search_pinned(&generation, &query);
                assert_eq!(replay.matches, outcome.matches);
            }
        }
    }

    /// The background compactor folds the delta without being asked and
    /// without perturbing the live set.
    #[test]
    fn background_compactor_folds_the_delta() {
        let (database, index, config) = setup();
        let engine = ConcurrentEngine::with_auto_compact(database, index, config, 4);
        let mut expected_ids = engine.pin().live_ids();
        for g in graphs(83, 10, 11) {
            expected_ids.push(engine.insert(g));
        }
        // Inserts below the threshold never signal, so the delta need not
        // end empty — but a background compaction must have pushed it back
        // below the threshold, with the live set intact.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let generation = engine.pin();
            if generation.len() == 26 && generation.view_delta().len() < 4 {
                assert_eq!(generation.live_ids(), expected_ids);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "compactor did not fold the delta in time (delta len {})",
                generation.view_delta().len()
            );
            std::thread::yield_now();
        }
        drop(engine); // joins the worker; must not hang or panic
    }
}
