//! The per-query stage planner: a small cost model that decides, before
//! each segment scan, which cascade stages are worth running.
//!
//! The fixed pipeline (stage 1 → stage 2 → count filter) is optimal only
//! when the bound stages actually decide a useful fraction of the database.
//! Three situations make parts of it pure overhead:
//!
//! - **Tiny candidate sets** — compiling per-bucket plans and sweeping bound
//!   words costs more than just resolving every graph exactly when a segment
//!   holds a handful of graphs (a small delta segment, a small database).
//! - **A useless stage 2** — when the distinct-run refinement almost never
//!   decides a graph that stage 1 left open, its per-chunk sweep is wasted
//!   work on every scan.
//! - **Weak bounds** — when the bounds decide almost nothing, the lazy
//!   "accumulate postings only for chunks with undecided graphs" check never
//!   saves an accumulation; going postings-first streams the postings
//!   eagerly instead.
//!
//! [`Planner`] owns a running profile of per-stage selectivities harvested
//! from [`SearchStats`] ([`Planner::observe`]) and answers
//! [`Planner::plan_for`] with a [`QueryPlan`]. Before enough queries have
//! been observed it falls back to static priors chosen to reproduce the
//! fixed pipeline on bound-friendly workloads. Every decision is
//! *result-neutral* by construction: skipping a bound stage only moves
//! graphs from a conservative early decision to the exact count filter, and
//! postings-first vs. bound-first only changes *when* the identical `u32`
//! accumulation runs — so matches, posteriors and ranked outputs are
//! bit-identical to the fixed pipeline (property-tested across threshold,
//! top-k, batch, dynamic and streaming paths). The
//! [`GbdaConfig::force_fixed_pipeline`] escape hatch bypasses the planner
//! entirely.
//!
//! [`GbdaConfig::force_fixed_pipeline`]: crate::GbdaConfig::force_fixed_pipeline

use gbd_graph::FlatBranchSet;
use parking_lot::Mutex;

use crate::filter::SegmentIndex;
use crate::search::SearchStats;

/// Segments smaller than this skip the bound stages outright: compiling
/// bucket plans and sweeping bound words costs more than resolving this few
/// graphs through the count filter.
pub const DIRECT_THRESHOLD: usize = 16;

/// How many queries the profile must have observed before its measured
/// selectivities override the static priors.
const MIN_OBSERVED_QUERIES: usize = 8;

/// Prior fraction of graphs decided by the bound stages (stages 1 + 2 or
/// the rank bound) before any stats exist — matches the committed synthetic
/// benches, where roughly half the database dies at stage 1.
const PRIOR_BOUND_SELECTIVITY: f64 = 0.4;

/// Prior fraction of graphs decided *specifically* by stage 2.
const PRIOR_STAGE2_SELECTIVITY: f64 = 0.05;

/// Stage 2 pays when its marginal selectivity clears this: the branchless
/// per-graph sweep costs ~1 unit, an exact resolution (postings + posterior
/// lookup) ~50, so anything above 1/50 wins.
const STAGE2_MIN_SELECTIVITY: f64 = 0.02;

/// Below this bound selectivity the lazy per-chunk accumulation check never
/// skips work, so stage 3 goes postings-first.
const POSTINGS_FIRST_BELOW: f64 = 0.15;

/// A query whose total postings are fewer than `candidates /
/// SPARSE_POSTINGS_DIVISOR` intersects so little of the segment that eager
/// accumulation is essentially free — postings-first regardless of bound
/// selectivity.
const SPARSE_POSTINGS_DIVISOR: usize = 8;

/// The stage schedule of one segment scan, chosen per query by [`Planner`]
/// (or pinned to [`QueryPlan::fixed`] under `force_fixed_pipeline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPlan {
    /// Run the stage-1/stage-2 bound sweep at all. When `false` every live
    /// graph goes straight to the exact count filter.
    pub use_bounds: bool,
    /// Run the stage-2 distinct-run refinement inside the bound sweep.
    /// Ignored when `use_bounds` is `false`.
    pub use_stage2: bool,
    /// Accumulate the stage-3 postings eagerly for every chunk
    /// (postings-first) instead of only for chunks the bounds left
    /// undecided (bound-first).
    pub postings_first: bool,
}

impl QueryPlan {
    /// The fixed stage-1 → stage-2 → count-filter pipeline: all bound
    /// stages on, bound-first stage 3.
    pub fn fixed() -> Self {
        QueryPlan {
            use_bounds: true,
            use_stage2: true,
            postings_first: false,
        }
    }
}

/// The running selectivity profile, summed over every observed query.
#[derive(Debug, Clone, Copy, Default)]
struct Profile {
    queries: usize,
    evaluated: usize,
    bound_decided: usize,
    stage2_decided: usize,
}

/// The stats-driven per-query stage planner. One lives in each engine; it
/// is fed every finished search ([`Planner::observe`]) and consulted before
/// every segment scan ([`Planner::plan_for`]).
#[derive(Debug, Default)]
pub struct Planner {
    profile: Mutex<Profile>,
}

impl Planner {
    /// A planner with no observations — decisions start from the static
    /// priors.
    pub fn new() -> Self {
        Planner::default()
    }

    /// Folds one finished search's counters into the running profile.
    pub fn observe(&self, stats: &SearchStats) {
        let mut profile = self.profile.lock();
        profile.queries += 1;
        profile.evaluated += stats.evaluated;
        profile.bound_decided += stats.bound_rejected + stats.bound_accepted + stats.rank_rejected;
        profile.stage2_decided += stats.stage2_decided;
    }

    /// The observed (bound, stage-2) selectivities, or the static priors
    /// when fewer than [`MIN_OBSERVED_QUERIES`] queries have been seen.
    fn selectivities(&self) -> (f64, f64) {
        let profile = *self.profile.lock();
        if profile.queries >= MIN_OBSERVED_QUERIES && profile.evaluated > 0 {
            (
                profile.bound_decided as f64 / profile.evaluated as f64,
                profile.stage2_decided as f64 / profile.evaluated as f64,
            )
        } else {
            (PRIOR_BOUND_SELECTIVITY, PRIOR_STAGE2_SELECTIVITY)
        }
    }

    /// Chooses the stage schedule for one query against one segment.
    ///
    /// - `candidates < DIRECT_THRESHOLD` → skip the bound stages, resolve
    ///   everything exactly (the per-bucket plan compilation would dominate).
    /// - stage 2 runs only while its marginal selectivity (observed or
    ///   prior) clears `STAGE2_MIN_SELECTIVITY`.
    /// - stage 3 goes postings-first when the bounds decide too little of
    ///   the segment (`POSTINGS_FIRST_BELOW`) or the query's postings are
    ///   sparse enough that eager accumulation is free.
    pub fn plan_for<S: SegmentIndex>(&self, segment: &S, query: &FlatBranchSet) -> QueryPlan {
        let candidates = segment.segment_len();
        if candidates < DIRECT_THRESHOLD {
            return QueryPlan {
                use_bounds: false,
                use_stage2: false,
                postings_first: true,
            };
        }
        let (bound_selectivity, stage2_selectivity) = self.selectivities();
        let postings: usize = query
            .runs()
            .iter()
            .map(|run| segment.postings_of(run.id).len())
            .sum();
        QueryPlan {
            use_bounds: true,
            use_stage2: stage2_selectivity >= STAGE2_MIN_SELECTIVITY,
            postings_first: bound_selectivity < POSTINGS_FIRST_BELOW
                || postings < candidates / SPARSE_POSTINGS_DIVISOR,
        }
    }

    /// Books one planned segment scan's choices into `stats` (the scan's
    /// own counters; absorbed into batch totals like every other counter).
    pub fn book(plan: QueryPlan, stats: &mut SearchStats) {
        stats.planned_scans += 1;
        if !plan.use_bounds {
            stats.plan_skipped_bounds += 1;
        } else if !plan.use_stage2 {
            stats.plan_skipped_stage2 += 1;
        }
        if plan.postings_first {
            stats.plan_postings_first += 1;
        }
        // The planner's aggregate skip/reorder counters reach the metrics
        // registry via the per-search flush; with traces armed, each
        // individual decision is also visible in the trace ring.
        if gbd_telemetry::traces_enabled() {
            gbd_telemetry::trace_event("planner.plan", "use_bounds", plan.use_bounds as u64);
            gbd_telemetry::trace_event("planner.plan", "use_stage2", plan.use_stage2 as u64);
            gbd_telemetry::trace_event(
                "planner.plan",
                "postings_first",
                plan.postings_first as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_plan_runs_everything_bound_first() {
        let plan = QueryPlan::fixed();
        assert!(plan.use_bounds && plan.use_stage2 && !plan.postings_first);
    }

    #[test]
    fn priors_hold_until_enough_queries_are_observed() {
        let planner = Planner::new();
        let (bound, stage2) = planner.selectivities();
        assert_eq!(bound, PRIOR_BOUND_SELECTIVITY);
        assert_eq!(stage2, PRIOR_STAGE2_SELECTIVITY);
        // Feed stats that would flip both decisions, but only a few times.
        let stats = SearchStats {
            evaluated: 1000,
            bound_rejected: 10,
            stage2_decided: 0,
            ..SearchStats::default()
        };
        for _ in 0..MIN_OBSERVED_QUERIES - 1 {
            planner.observe(&stats);
        }
        assert_eq!(
            planner.selectivities(),
            (PRIOR_BOUND_SELECTIVITY, PRIOR_STAGE2_SELECTIVITY)
        );
        planner.observe(&stats);
        let (bound, stage2) = planner.selectivities();
        assert!(bound < POSTINGS_FIRST_BELOW);
        assert!(stage2 < STAGE2_MIN_SELECTIVITY);
    }

    #[test]
    fn booking_tallies_each_decision_once() {
        let mut stats = SearchStats::default();
        Planner::book(QueryPlan::fixed(), &mut stats);
        assert_eq!(stats.planned_scans, 1);
        assert_eq!(stats.plan_skipped_bounds, 0);
        assert_eq!(stats.plan_skipped_stage2, 0);
        assert_eq!(stats.plan_postings_first, 0);
        Planner::book(
            QueryPlan {
                use_bounds: false,
                use_stage2: false,
                postings_first: true,
            },
            &mut stats,
        );
        assert_eq!(stats.planned_scans, 2);
        assert_eq!(stats.plan_skipped_bounds, 1);
        assert_eq!(stats.plan_postings_first, 1);
    }
}
