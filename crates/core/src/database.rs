//! The graph database `D` with pre-computed branch storage.
//!
//! Section III assumes the auxiliary structures of every method (branch
//! multisets here, cost matrices for LSAP, adjacency matrices for seriation)
//! are pre-computed and stored with the graphs; [`GraphDatabase`] does exactly
//! that for GBDA so the online stage only pays the `O(nd)` merge per pair.
//!
//! Branches are stored twice, serving different stages:
//!
//! * one [`BranchMultiset`] per graph — the faithful construction-time form,
//!   still used by diagnostics and by code that inspects actual branches;
//! * a workspace-wide [`BranchCatalog`] plus one **flat branch set** per
//!   graph, all runs packed into a single contiguous arena. The hot GBD path
//!   is a branchless merge over `(u32 id, u32 count)` slices of that arena —
//!   no pointer chasing through per-branch edge-label vectors.

use gbd_graph::{
    BranchCatalog, BranchMultiset, BranchRun, DatasetStats, FlatBranchView, Graph, LabelAlphabets,
};

/// A graph database with pre-computed branch multisets and an arena of flat
/// interned branch sets.
#[derive(Debug, Clone)]
pub struct GraphDatabase {
    graphs: Vec<Graph>,
    branches: Vec<BranchMultiset>,
    /// Interned branch vocabulary of the whole database.
    catalog: BranchCatalog,
    /// All flat runs, one contiguous allocation for cache locality.
    arena: Vec<BranchRun>,
    /// `spans[i]` is the arena range holding graph `i`'s runs.
    spans: Vec<(u32, u32)>,
    alphabets: LabelAlphabets,
    max_vertices: usize,
    /// Sorted distinct vertex counts, used to bound posterior memoization.
    distinct_sizes: Vec<usize>,
}

impl GraphDatabase {
    /// Builds a database from graphs, deriving the label alphabets from the
    /// graphs themselves.
    pub fn from_graphs(graphs: Vec<Graph>) -> Self {
        let stats = DatasetStats::compute(graphs.iter());
        let alphabets = LabelAlphabets::new(stats.vertex_label_count, stats.edge_label_count);
        Self::with_alphabets(graphs, alphabets)
    }

    /// Builds a database from graphs with explicitly provided label alphabet
    /// sizes (e.g. the domain alphabet of a dataset profile, which is what
    /// the probabilistic model should use even if a small database happens to
    /// exercise only part of it).
    pub fn with_alphabets(graphs: Vec<Graph>, alphabets: LabelAlphabets) -> Self {
        let branches: Vec<BranchMultiset> = graphs.iter().map(BranchMultiset::from_graph).collect();
        let mut catalog = BranchCatalog::new();
        let mut arena = Vec::new();
        let mut spans = Vec::with_capacity(branches.len());
        for multiset in &branches {
            let flat = catalog.flatten(multiset);
            let start =
                u32::try_from(arena.len()).expect("fewer than 2^32 branch runs in the arena");
            arena.extend_from_slice(flat.runs());
            spans.push((start, flat.runs().len() as u32));
        }
        let max_vertices = graphs.iter().map(Graph::vertex_count).max().unwrap_or(0);
        let mut distinct_sizes: Vec<usize> = graphs.iter().map(Graph::vertex_count).collect();
        distinct_sizes.sort_unstable();
        distinct_sizes.dedup();
        GraphDatabase {
            graphs,
            branches,
            catalog,
            arena,
            spans,
            alphabets,
            max_vertices,
            distinct_sizes,
        }
    }

    /// Number of graphs `|D|`.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Returns `true` for an empty database.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The `i`-th graph.
    pub fn graph(&self, i: usize) -> &Graph {
        &self.graphs[i]
    }

    /// All graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// The pre-computed branch multiset of the `i`-th graph.
    pub fn branches(&self, i: usize) -> &BranchMultiset {
        &self.branches[i]
    }

    /// The interned branch vocabulary of the database.
    pub fn catalog(&self) -> &BranchCatalog {
        &self.catalog
    }

    /// The flat branch set of the `i`-th graph, borrowed from the arena.
    pub fn flat(&self, i: usize) -> FlatBranchView<'_> {
        let (start, len) = self.spans[i];
        FlatBranchView::new(
            &self.arena[start as usize..(start + len) as usize],
            self.graphs[i].vertex_count(),
        )
    }

    /// Total number of `(id, count)` runs stored in the arena.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Label alphabet sizes used by the probabilistic model.
    pub fn alphabets(&self) -> LabelAlphabets {
        self.alphabets
    }

    /// Largest vertex count in the database.
    pub fn max_vertices(&self) -> usize {
        self.max_vertices
    }

    /// Sorted distinct vertex counts across the database. The posterior of
    /// Algorithm 1 depends on the pair only through `(|V'1|, ϕ)`, so this
    /// bounds how many distinct posteriors a whole scan can evaluate.
    pub fn distinct_sizes(&self) -> &[usize] {
        &self.distinct_sizes
    }

    /// GBD between two database graphs over the flat arena storage.
    pub fn gbd_between(&self, i: usize, j: usize) -> usize {
        self.flat(i).gbd(self.flat(j))
    }

    /// GBD between an external (query) branch multiset and the `i`-th graph.
    pub fn gbd_to(&self, query: &BranchMultiset, i: usize) -> usize {
        query.gbd(&self.branches[i])
    }

    /// GBD between a query flattened against [`Self::catalog`] and the `i`-th
    /// graph — the hot-path variant of [`Self::gbd_to`].
    pub fn gbd_to_flat(&self, query: FlatBranchView<'_>, i: usize) -> usize {
        query.gbd(self.flat(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    fn db() -> GraphDatabase {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        GraphDatabase::from_graphs(vec![g1, g2])
    }

    #[test]
    fn precomputes_branches_and_stats() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.max_vertices(), 4);
        assert_eq!(db.branches(0).len(), 3);
        assert_eq!(db.branches(1).len(), 4);
        // Figure 1 alphabets: A, B, C vertices and x, y, z edges.
        assert_eq!(db.alphabets().vertex_labels, 3);
        assert_eq!(db.alphabets().edge_labels, 3);
    }

    #[test]
    fn gbd_between_matches_example_2() {
        let db = db();
        assert_eq!(db.gbd_between(0, 1), 3);
        assert_eq!(db.gbd_between(0, 0), 0);
    }

    #[test]
    fn gbd_to_external_query() {
        let db = db();
        let (q, _) = figure1_g1();
        let query = BranchMultiset::from_graph(&q);
        assert_eq!(db.gbd_to(&query, 0), 0);
        assert_eq!(db.gbd_to(&query, 1), 3);
        let flat = db.catalog().flatten_lookup(&query);
        assert_eq!(db.gbd_to_flat(flat.as_view(), 0), 0);
        assert_eq!(db.gbd_to_flat(flat.as_view(), 1), 3);
    }

    #[test]
    fn flat_storage_agrees_with_multisets() {
        let db = db();
        for i in 0..db.len() {
            assert_eq!(db.flat(i).len(), db.branches(i).len());
            for j in 0..db.len() {
                assert_eq!(
                    db.flat(i).gbd(db.flat(j)),
                    db.branches(i).gbd(db.branches(j)),
                    "flat and multiset GBD disagree on pair ({i}, {j})"
                );
            }
        }
        assert!(!db.catalog().is_empty());
        assert_eq!(
            db.arena_len(),
            db.flat(0).runs().len() + db.flat(1).runs().len()
        );
    }

    #[test]
    fn distinct_sizes_are_sorted_and_deduplicated() {
        let db = db();
        assert_eq!(db.distinct_sizes(), &[3, 4]);
    }

    #[test]
    fn explicit_alphabets_are_preserved() {
        let (g1, _) = figure1_g1();
        let db = GraphDatabase::with_alphabets(vec![g1], LabelAlphabets::new(20, 5));
        assert_eq!(db.alphabets().vertex_labels, 20);
        assert_eq!(db.alphabets().edge_labels, 5);
    }

    #[test]
    fn empty_database_is_well_defined() {
        let db = GraphDatabase::from_graphs(Vec::new());
        assert!(db.is_empty());
        assert_eq!(db.max_vertices(), 0);
        assert_eq!(db.arena_len(), 0);
        assert!(db.distinct_sizes().is_empty());
    }
}
