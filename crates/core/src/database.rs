//! The graph database `D` with pre-computed branch multisets.
//!
//! Section III assumes the auxiliary structures of every method (branch
//! multisets here, cost matrices for LSAP, adjacency matrices for seriation)
//! are pre-computed and stored with the graphs; [`GraphDatabase`] does exactly
//! that for GBDA so the online stage only pays the `O(nd)` merge per pair.

use gbd_graph::{BranchMultiset, DatasetStats, Graph, LabelAlphabets};

/// A graph database with one pre-computed [`BranchMultiset`] per graph.
#[derive(Debug, Clone)]
pub struct GraphDatabase {
    graphs: Vec<Graph>,
    branches: Vec<BranchMultiset>,
    alphabets: LabelAlphabets,
    max_vertices: usize,
}

impl GraphDatabase {
    /// Builds a database from graphs, deriving the label alphabets from the
    /// graphs themselves.
    pub fn from_graphs(graphs: Vec<Graph>) -> Self {
        let stats = DatasetStats::compute(graphs.iter());
        let alphabets = LabelAlphabets::new(stats.vertex_label_count, stats.edge_label_count);
        Self::with_alphabets(graphs, alphabets)
    }

    /// Builds a database from graphs with explicitly provided label alphabet
    /// sizes (e.g. the domain alphabet of a dataset profile, which is what
    /// the probabilistic model should use even if a small database happens to
    /// exercise only part of it).
    pub fn with_alphabets(graphs: Vec<Graph>, alphabets: LabelAlphabets) -> Self {
        let branches = graphs.iter().map(BranchMultiset::from_graph).collect();
        let max_vertices = graphs.iter().map(Graph::vertex_count).max().unwrap_or(0);
        GraphDatabase {
            graphs,
            branches,
            alphabets,
            max_vertices,
        }
    }

    /// Number of graphs `|D|`.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Returns `true` for an empty database.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The `i`-th graph.
    pub fn graph(&self, i: usize) -> &Graph {
        &self.graphs[i]
    }

    /// All graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// The pre-computed branch multiset of the `i`-th graph.
    pub fn branches(&self, i: usize) -> &BranchMultiset {
        &self.branches[i]
    }

    /// Label alphabet sizes used by the probabilistic model.
    pub fn alphabets(&self) -> LabelAlphabets {
        self.alphabets
    }

    /// Largest vertex count in the database.
    pub fn max_vertices(&self) -> usize {
        self.max_vertices
    }

    /// GBD between two database graphs using the pre-computed multisets.
    pub fn gbd_between(&self, i: usize, j: usize) -> usize {
        self.branches[i].gbd(&self.branches[j])
    }

    /// GBD between an external (query) branch multiset and the `i`-th graph.
    pub fn gbd_to(&self, query: &BranchMultiset, i: usize) -> usize {
        query.gbd(&self.branches[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    fn db() -> GraphDatabase {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        GraphDatabase::from_graphs(vec![g1, g2])
    }

    #[test]
    fn precomputes_branches_and_stats() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.max_vertices(), 4);
        assert_eq!(db.branches(0).len(), 3);
        assert_eq!(db.branches(1).len(), 4);
        // Figure 1 alphabets: A, B, C vertices and x, y, z edges.
        assert_eq!(db.alphabets().vertex_labels, 3);
        assert_eq!(db.alphabets().edge_labels, 3);
    }

    #[test]
    fn gbd_between_matches_example_2() {
        let db = db();
        assert_eq!(db.gbd_between(0, 1), 3);
        assert_eq!(db.gbd_between(0, 0), 0);
    }

    #[test]
    fn gbd_to_external_query() {
        let db = db();
        let (q, _) = figure1_g1();
        let query = BranchMultiset::from_graph(&q);
        assert_eq!(db.gbd_to(&query, 0), 0);
        assert_eq!(db.gbd_to(&query, 1), 3);
    }

    #[test]
    fn explicit_alphabets_are_preserved() {
        let (g1, _) = figure1_g1();
        let db = GraphDatabase::with_alphabets(vec![g1], LabelAlphabets::new(20, 5));
        assert_eq!(db.alphabets().vertex_labels, 20);
        assert_eq!(db.alphabets().edge_labels, 5);
    }

    #[test]
    fn empty_database_is_well_defined() {
        let db = GraphDatabase::from_graphs(Vec::new());
        assert!(db.is_empty());
        assert_eq!(db.max_vertices(), 0);
    }
}
