//! The graph database `D` with pre-computed branch storage.
//!
//! Section III assumes the auxiliary structures of every method (branch
//! multisets here, cost matrices for LSAP, adjacency matrices for seriation)
//! are pre-computed and stored with the graphs; [`GraphDatabase`] does exactly
//! that for GBDA so the online stage only pays the `O(nd)` merge per pair.
//!
//! Branches are stored twice, serving different stages:
//!
//! * one [`BranchMultiset`] per graph — the faithful construction-time form,
//!   still used by diagnostics and by code that inspects actual branches;
//! * a workspace-wide [`BranchCatalog`] plus one **flat branch set** per
//!   graph, all runs packed into a single contiguous arena. The hot GBD path
//!   is a branchless merge over `(u32 id, u32 count)` slices of that arena —
//!   no pointer chasing through per-branch edge-label vectors.
//!
//! On top of the arena the database pre-computes what the filter cascade of
//! [`crate::filter`] needs to skip most of those merges:
//!
//! * **per-graph aggregates** — vertex count, distinct-run count and largest
//!   run multiplicity, each in its own flat array so the scan touches a
//!   couple of integers instead of a `Graph`;
//! * **size buckets** — every graph is assigned the index of its vertex
//!   count within [`GraphDatabase::distinct_sizes`], so per-size decisions (posterior
//!   thresholds) are computed once per bucket and shared by every graph in
//!   it;
//! * a CSR-style **inverted branch index** mapping branch id →
//!   [`Posting`] list of `(graph, count)`, sorted by graph index. Walking
//!   the query's runs over these postings yields the *exact* multiset
//!   intersection with every database graph without merging any runs.

use gbd_graph::{
    Branch, BranchCatalog, BranchMultiset, BranchRun, DatasetStats, FlatBranchView, Graph,
    LabelAlphabets,
};

use crate::error::{EngineError, EngineResult};

/// One entry of the inverted branch index: graph `graph` contains `count`
/// copies of the branch whose postings list this entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Database index of the graph.
    pub graph: u32,
    /// Multiplicity of the branch in that graph.
    pub count: u32,
}

/// The per-graph scan aggregates, packed into one 16-byte record so the
/// bound stages of the filter cascade read a single cache line per four
/// graphs instead of striding four parallel arrays.
///
/// Everything stage 1 and stage 2 of [`crate::FilterCascade`] need about a
/// graph lives here; the kernel's chunked classification loop walks a
/// `&[GraphAggregate]` slice sequentially and never touches the `Graph`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct GraphAggregate {
    /// Vertex count (`|G|`, equal to the total branch count).
    pub size: u32,
    /// Index of `size` in the segment's distinct-size table — the graph's
    /// *size bucket*, which keys every per-size decision table.
    pub bucket: u32,
    /// Number of distinct branch runs (`d_G`).
    pub runs: u32,
    /// Largest run multiplicity (`maxrun_G`, 0 for an empty graph).
    pub max_run: u32,
}

/// One maximal run of consecutive graphs sharing a size bucket: the graphs
/// from the previous run's `end` (or 0) up to `end` all live in `bucket`.
///
/// Databases built from generators or real datasets are usually stored
/// grouped by size, so a segment decomposes into a handful of long runs —
/// and the scan kernel's stage-1 sweep classifies each run with *one* plan
/// lookup and a couple of mask operations instead of one lookup per graph.
/// A pathologically interleaved segment degrades to length-1 runs, which
/// costs no more than the per-graph sweep it replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketRun {
    /// One-past-the-end segment index of the run.
    pub end: u32,
    /// The size bucket shared by every graph in the run.
    pub bucket: u32,
}

/// Compresses per-graph bucket assignments into maximal [`BucketRun`]s.
pub(crate) fn compress_bucket_runs(aggregates: &[GraphAggregate]) -> Vec<BucketRun> {
    let mut runs: Vec<BucketRun> = Vec::new();
    for (i, agg) in aggregates.iter().enumerate() {
        match runs.last_mut() {
            Some(run) if run.bucket == agg.bucket => run.end = i as u32 + 1,
            _ => runs.push(BucketRun {
                end: i as u32 + 1,
                bucket: agg.bucket,
            }),
        }
    }
    runs
}

/// A graph database with pre-computed branch multisets, an arena of flat
/// interned branch sets, per-graph aggregates and an inverted branch index.
#[derive(Debug, Clone)]
pub struct GraphDatabase {
    graphs: Vec<Graph>,
    branches: Vec<BranchMultiset>,
    /// Interned branch vocabulary of the whole database.
    catalog: BranchCatalog,
    /// All flat runs, one contiguous allocation for cache locality.
    arena: Vec<BranchRun>,
    /// `spans[i]` is the arena range holding graph `i`'s runs.
    spans: Vec<(u32, u32)>,
    alphabets: LabelAlphabets,
    max_vertices: usize,
    /// Sorted distinct vertex counts, used to bound posterior memoization.
    distinct_sizes: Vec<usize>,
    /// `aggregates[i]` packs graph `i`'s size, size bucket, distinct-run
    /// count and largest run multiplicity into one cache-friendly record.
    aggregates: Vec<GraphAggregate>,
    /// Maximal constant-bucket index intervals over `aggregates`, for the
    /// scan kernel's interval-based stage-1 sweep.
    bucket_runs: Vec<BucketRun>,
    /// CSR offsets: branch id `b`'s postings live at
    /// `postings[posting_offsets[b]..posting_offsets[b + 1]]`.
    posting_offsets: Vec<u32>,
    /// All postings, grouped by branch id, sorted by graph index within
    /// each group.
    postings: Vec<Posting>,
}

/// Builds the CSR inverted index from the per-graph arena spans with two
/// counting passes (no sorting): postings inherit the ascending graph order.
fn build_inverted_index(
    branch_count: usize,
    spans: &[(u32, u32)],
    arena: &[BranchRun],
) -> (Vec<u32>, Vec<Posting>) {
    let mut offsets = vec![0u32; branch_count + 1];
    for run in arena {
        offsets[run.id as usize + 1] += 1;
    }
    for b in 0..branch_count {
        offsets[b + 1] += offsets[b];
    }
    let mut cursors: Vec<u32> = offsets[..branch_count].to_vec();
    let mut postings = vec![Posting { graph: 0, count: 0 }; arena.len()];
    for (graph, &(start, len)) in spans.iter().enumerate() {
        for run in &arena[start as usize..(start + len) as usize] {
            let slot = cursors[run.id as usize];
            postings[slot as usize] = Posting {
                graph: graph as u32,
                count: run.count,
            };
            cursors[run.id as usize] = slot + 1;
        }
    }
    (offsets, postings)
}

impl GraphDatabase {
    /// Builds a database from graphs, deriving the label alphabets from the
    /// graphs themselves.
    pub fn from_graphs(graphs: Vec<Graph>) -> Self {
        let stats = DatasetStats::compute(graphs.iter());
        let alphabets = LabelAlphabets::new(stats.vertex_label_count, stats.edge_label_count);
        Self::with_alphabets(graphs, alphabets)
    }

    /// Builds a database from graphs with explicitly provided label alphabet
    /// sizes (e.g. the domain alphabet of a dataset profile, which is what
    /// the probabilistic model should use even if a small database happens to
    /// exercise only part of it).
    pub fn with_alphabets(graphs: Vec<Graph>, alphabets: LabelAlphabets) -> Self {
        let branches: Vec<BranchMultiset> = graphs.iter().map(BranchMultiset::from_graph).collect();
        let mut catalog = BranchCatalog::new();
        let mut arena = Vec::new();
        let mut spans = Vec::with_capacity(branches.len());
        for multiset in &branches {
            let flat = catalog.flatten(multiset);
            let start =
                u32::try_from(arena.len()).expect("fewer than 2^32 branch runs in the arena");
            arena.extend_from_slice(flat.runs());
            spans.push((start, flat.runs().len() as u32));
        }
        let max_vertices = graphs.iter().map(Graph::vertex_count).max().unwrap_or(0);
        let mut distinct_sizes: Vec<usize> = graphs.iter().map(Graph::vertex_count).collect();
        distinct_sizes.sort_unstable();
        distinct_sizes.dedup();
        let aggregates: Vec<GraphAggregate> = graphs
            .iter()
            .zip(&spans)
            .map(|(g, &(start, len))| {
                let size = g.vertex_count();
                let bucket = distinct_sizes
                    .binary_search(&size)
                    .expect("every vertex count is in distinct_sizes");
                let max_run = arena[start as usize..(start + len) as usize]
                    .iter()
                    .map(|run| run.count)
                    .max()
                    .unwrap_or(0);
                GraphAggregate {
                    size: size as u32,
                    bucket: bucket as u32,
                    runs: len,
                    max_run,
                }
            })
            .collect();
        let (posting_offsets, postings) = build_inverted_index(catalog.len(), &spans, &arena);
        let bucket_runs = compress_bucket_runs(&aggregates);
        GraphDatabase {
            graphs,
            branches,
            catalog,
            arena,
            spans,
            alphabets,
            max_vertices,
            distinct_sizes,
            aggregates,
            bucket_runs,
            posting_offsets,
            postings,
        }
    }

    /// Number of graphs `|D|`.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Returns `true` for an empty database.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The `i`-th graph.
    pub fn graph(&self, i: usize) -> &Graph {
        &self.graphs[i]
    }

    /// All graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// The pre-computed branch multiset of the `i`-th graph.
    pub fn branches(&self, i: usize) -> &BranchMultiset {
        &self.branches[i]
    }

    /// The interned branch vocabulary of the database.
    pub fn catalog(&self) -> &BranchCatalog {
        &self.catalog
    }

    /// The flat branch set of the `i`-th graph, borrowed from the arena.
    pub fn flat(&self, i: usize) -> FlatBranchView<'_> {
        let (start, len) = self.spans[i];
        FlatBranchView::new(
            &self.arena[start as usize..(start + len) as usize],
            self.graphs[i].vertex_count(),
        )
    }

    /// Total number of `(id, count)` runs stored in the arena.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Label alphabet sizes used by the probabilistic model.
    pub fn alphabets(&self) -> LabelAlphabets {
        self.alphabets
    }

    /// Largest vertex count in the database.
    pub fn max_vertices(&self) -> usize {
        self.max_vertices
    }

    /// Sorted distinct vertex counts across the database. The posterior of
    /// Algorithm 1 depends on the pair only through `(|V'1|, ϕ)`, so this
    /// bounds how many distinct posteriors a whole scan can evaluate.
    pub fn distinct_sizes(&self) -> &[usize] {
        &self.distinct_sizes
    }

    /// The packed per-graph scan aggregates, one [`GraphAggregate`] per
    /// graph — what the kernel's chunked bound stages iterate.
    pub fn aggregates(&self) -> &[GraphAggregate] {
        &self.aggregates
    }

    /// The maximal constant-bucket index intervals over [`Self::aggregates`]
    /// — what the kernel's stage-1 sweep classifies interval-at-a-time.
    pub fn bucket_runs(&self) -> &[BucketRun] {
        &self.bucket_runs
    }

    /// Vertex count of the `i`-th graph, read from the packed aggregate
    /// record (no `Graph` pointer chase on the scan hot path).
    pub fn size_of(&self, i: usize) -> usize {
        self.aggregates[i].size as usize
    }

    /// Index of the `i`-th graph's vertex count in [`Self::distinct_sizes`] —
    /// its *size bucket*. Per-size threshold decisions are computed once per
    /// bucket and shared by every graph in it.
    pub fn bucket_of(&self, i: usize) -> usize {
        self.aggregates[i].bucket as usize
    }

    /// Number of distinct branch runs of the `i`-th graph.
    pub fn distinct_runs(&self, i: usize) -> usize {
        self.aggregates[i].runs as usize
    }

    /// Largest run multiplicity of the `i`-th graph (0 for an empty graph).
    pub fn max_run_count(&self, i: usize) -> u32 {
        self.aggregates[i].max_run
    }

    /// The postings list of one catalogued branch id: every `(graph, count)`
    /// pair with that branch, sorted by graph index.
    ///
    /// # Panics
    /// Panics if `branch_id` was not produced by [`Self::catalog`].
    pub fn postings(&self, branch_id: u32) -> &[Posting] {
        let start = self.posting_offsets[branch_id as usize] as usize;
        let end = self.posting_offsets[branch_id as usize + 1] as usize;
        &self.postings[start..end]
    }

    /// Total number of postings in the inverted index (equals
    /// [`Self::arena_len`]: one posting per stored run).
    pub fn postings_len(&self) -> usize {
        self.postings.len()
    }

    /// Rebuilds the inverted index from the stored arena spans and returns
    /// it. Diagnostic / benchmarking hook: the constructor already built and
    /// stored an identical index.
    pub fn rebuild_inverted_index(&self) -> (Vec<u32>, Vec<Posting>) {
        build_inverted_index(self.catalog.len(), &self.spans, &self.arena)
    }

    /// GBD between two database graphs over the flat arena storage.
    pub fn gbd_between(&self, i: usize, j: usize) -> usize {
        self.flat(i).gbd(self.flat(j))
    }

    /// GBD between an external (query) branch multiset and the `i`-th graph.
    pub fn gbd_to(&self, query: &BranchMultiset, i: usize) -> usize {
        query.gbd(&self.branches[i])
    }

    /// GBD between a query flattened against [`Self::catalog`] and the `i`-th
    /// graph — the hot-path variant of [`Self::gbd_to`].
    pub fn gbd_to_flat(&self, query: FlatBranchView<'_>, i: usize) -> usize {
        query.gbd(self.flat(i))
    }

    /// Clones this database's raw parts — the serialisable form a storage
    /// engine persists. Branch multisets are *not* part of the export: they
    /// are fully derivable from the catalog and the arena, and
    /// [`Self::from_parts`] reconstructs them without re-extracting a single
    /// branch from a graph.
    pub fn to_parts(&self) -> DatabaseParts {
        DatabaseParts {
            graphs: self.graphs.clone(),
            branches: self.catalog.branches().to_vec(),
            arena: self.arena.clone(),
            spans: self.spans.clone(),
            alphabets: self.alphabets,
            distinct_sizes: self.distinct_sizes.clone(),
            sizes: self.aggregates.iter().map(|a| a.size).collect(),
            buckets: self.aggregates.iter().map(|a| a.bucket).collect(),
            run_counts: self.aggregates.iter().map(|a| a.runs).collect(),
            max_run_counts: self.aggregates.iter().map(|a| a.max_run).collect(),
            posting_offsets: self.posting_offsets.clone(),
            postings: self.postings.clone(),
        }
    }

    /// Rebuilds a database from exported (or deserialised) parts without
    /// recomputing the catalog, the aggregates or the inverted index.
    ///
    /// Every cross-structure invariant the scan relies on is validated, so a
    /// corrupted export yields [`EngineError::CorruptDatabase`] here rather
    /// than a panic (or a wrong answer) during a later query. The per-graph
    /// branch multisets are reconstructed from the catalog by expanding each
    /// graph's runs in sorted branch order — a clone per branch instead of
    /// the extraction, comparison sort and interning hash of
    /// [`Self::from_graphs`].
    pub fn from_parts(parts: DatabaseParts) -> EngineResult<Self> {
        let corrupt = |reason: String| EngineError::CorruptDatabase { reason };
        let DatabaseParts {
            graphs,
            branches,
            arena,
            spans,
            alphabets,
            distinct_sizes,
            sizes,
            buckets,
            run_counts,
            max_run_counts,
            posting_offsets,
            postings,
        } = parts;
        let n = graphs.len();
        for (name, len) in [
            ("spans", spans.len()),
            ("sizes", sizes.len()),
            ("buckets", buckets.len()),
            ("run_counts", run_counts.len()),
            ("max_run_counts", max_run_counts.len()),
        ] {
            if len != n {
                return Err(corrupt(format!("{name} has {len} entries for {n} graphs")));
            }
        }
        let catalog =
            BranchCatalog::from_branches(branches).map_err(|e| corrupt(format!("catalog: {e}")))?;

        // Spans must tile the arena contiguously and every run must be a
        // valid, id-sorted reference into the catalog.
        let mut expected_start = 0u32;
        for (i, &(start, len)) in spans.iter().enumerate() {
            if start != expected_start {
                return Err(corrupt(format!(
                    "span {i} does not start at {expected_start}"
                )));
            }
            let end = (start as usize)
                .checked_add(len as usize)
                .filter(|&end| end <= arena.len())
                .ok_or_else(|| corrupt(format!("span {i} exceeds the arena")))?;
            expected_start = end as u32;
            let runs = &arena[start as usize..end];
            let mut total = 0usize;
            for (k, run) in runs.iter().enumerate() {
                if run.id as usize >= catalog.len() {
                    return Err(corrupt(format!(
                        "graph {i} run {k} has unknown id {}",
                        run.id
                    )));
                }
                if k > 0 && runs[k - 1].id >= run.id {
                    return Err(corrupt(format!("graph {i} runs are not id-sorted")));
                }
                if run.count == 0 {
                    return Err(corrupt(format!("graph {i} run {k} has count 0")));
                }
                total += run.count as usize;
            }
            if graphs[i].vertex_count() != sizes[i] as usize {
                return Err(corrupt(format!(
                    "graph {i} size disagrees with its aggregate"
                )));
            }
            if total != sizes[i] as usize {
                return Err(corrupt(format!(
                    "graph {i} runs sum to {total}, size is {}",
                    sizes[i]
                )));
            }
            if run_counts[i] != len {
                return Err(corrupt(format!(
                    "graph {i} run count disagrees with its span"
                )));
            }
            let max_run = runs.iter().map(|r| r.count).max().unwrap_or(0);
            if max_run_counts[i] != max_run {
                return Err(corrupt(format!("graph {i} max run count is stale")));
            }
        }
        if expected_start as usize != arena.len() {
            return Err(corrupt("spans do not cover the whole arena".into()));
        }

        // The size-bucket table: sorted, duplicate-free, exactly the sizes
        // that occur (a phantom bucket would leak into posterior decisions).
        if !distinct_sizes.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt("distinct_sizes is not strictly ascending".into()));
        }
        let mut seen = vec![false; distinct_sizes.len()];
        for (i, (&size, &bucket)) in sizes.iter().zip(&buckets).enumerate() {
            match distinct_sizes.get(bucket as usize) {
                Some(&expected) if expected == size as usize => seen[bucket as usize] = true,
                _ => return Err(corrupt(format!("graph {i} has a stale size bucket"))),
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err(corrupt("distinct_sizes lists a size no graph has".into()));
        }
        let max_vertices = distinct_sizes.last().copied().unwrap_or(0);

        // Postings: structurally safe CSR over the same graphs. Deep
        // agreement with the arena is covered by the caller's checksum (and
        // by [`Self::verify_postings`] where callers want the full audit).
        if posting_offsets.len() != catalog.len() + 1 {
            return Err(corrupt(format!(
                "posting offsets have {} entries for {} branches",
                posting_offsets.len(),
                catalog.len()
            )));
        }
        if posting_offsets.first().copied().unwrap_or(0) != 0
            || !posting_offsets.windows(2).all(|w| w[0] <= w[1])
            || posting_offsets.last().copied().unwrap_or(0) as usize != postings.len()
        {
            return Err(corrupt("posting offsets are not a monotone cover".into()));
        }
        if postings.len() != arena.len() {
            return Err(corrupt(format!(
                "{} postings for {} arena runs",
                postings.len(),
                arena.len()
            )));
        }
        for window in posting_offsets.windows(2) {
            let list = &postings[window[0] as usize..window[1] as usize];
            for (k, posting) in list.iter().enumerate() {
                if posting.graph as usize >= n {
                    return Err(corrupt(format!(
                        "posting references graph {}",
                        posting.graph
                    )));
                }
                if k > 0 && list[k - 1].graph >= posting.graph {
                    return Err(corrupt("a postings list is not graph-sorted".into()));
                }
            }
        }

        // Reconstruct the branch multisets: expand each graph's runs in
        // sorted branch order (rank table computed once for the catalog).
        let mut order: Vec<u32> = (0..catalog.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| catalog.branch(a).cmp(catalog.branch(b)));
        let mut rank = vec![0u32; catalog.len()];
        for (position, &id) in order.iter().enumerate() {
            rank[id as usize] = position as u32;
        }
        let branches: Vec<BranchMultiset> = spans
            .iter()
            .map(|&(start, len)| {
                let mut runs: Vec<&BranchRun> = arena[start as usize..(start + len) as usize]
                    .iter()
                    .collect();
                runs.sort_unstable_by_key(|run| rank[run.id as usize]);
                let mut expanded = Vec::with_capacity(runs.iter().map(|r| r.count as usize).sum());
                for run in runs {
                    for _ in 0..run.count {
                        expanded.push(catalog.branch(run.id).clone());
                    }
                }
                BranchMultiset::from_sorted_branches(expanded)
            })
            .collect();

        // Pack the four validated parallel arrays into the SoA aggregate
        // layout the scan kernel iterates.
        let aggregates: Vec<GraphAggregate> = (0..n)
            .map(|i| GraphAggregate {
                size: sizes[i],
                bucket: buckets[i],
                runs: run_counts[i],
                max_run: max_run_counts[i],
            })
            .collect();

        Ok(GraphDatabase {
            graphs,
            branches,
            catalog,
            arena,
            spans,
            alphabets,
            max_vertices,
            distinct_sizes,
            bucket_runs: compress_bucket_runs(&aggregates),
            aggregates,
            posting_offsets,
            postings,
        })
    }

    /// Audits the stored inverted index against a fresh rebuild from the
    /// arena — the deep consistency check [`Self::from_parts`] leaves to the
    /// storage layer's checksum. Linear in the arena; used by equivalence
    /// tests and the `bench_store --check` smoke.
    pub fn verify_postings(&self) -> bool {
        let (offsets, postings) = self.rebuild_inverted_index();
        offsets == self.posting_offsets && postings == self.postings
    }
}

/// The raw, serialisable parts of a [`GraphDatabase`]: what
/// [`GraphDatabase::to_parts`] exports and a snapshot file stores. All fields
/// are plain data; [`GraphDatabase::from_parts`] revalidates every
/// cross-structure invariant before a database is rebuilt around them.
#[derive(Debug, Clone)]
pub struct DatabaseParts {
    /// The graphs, in database order.
    pub graphs: Vec<Graph>,
    /// The interned branch vocabulary in id order (`branches[i]` has id `i`).
    pub branches: Vec<Branch>,
    /// All flat branch runs, concatenated per graph.
    pub arena: Vec<BranchRun>,
    /// `spans[i]` is the `(start, len)` arena range of graph `i`.
    pub spans: Vec<(u32, u32)>,
    /// Label alphabet sizes used by the probabilistic model.
    pub alphabets: LabelAlphabets,
    /// Sorted distinct vertex counts.
    pub distinct_sizes: Vec<usize>,
    /// Per-graph vertex counts.
    pub sizes: Vec<u32>,
    /// Per-graph size-bucket indices into `distinct_sizes`.
    pub buckets: Vec<u32>,
    /// Per-graph distinct-run counts.
    pub run_counts: Vec<u32>,
    /// Per-graph largest run multiplicities.
    pub max_run_counts: Vec<u32>,
    /// CSR offsets of the inverted branch index.
    pub posting_offsets: Vec<u32>,
    /// CSR postings of the inverted branch index.
    pub postings: Vec<Posting>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    fn db() -> GraphDatabase {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        GraphDatabase::from_graphs(vec![g1, g2])
    }

    #[test]
    fn precomputes_branches_and_stats() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.max_vertices(), 4);
        assert_eq!(db.branches(0).len(), 3);
        assert_eq!(db.branches(1).len(), 4);
        // Figure 1 alphabets: A, B, C vertices and x, y, z edges.
        assert_eq!(db.alphabets().vertex_labels, 3);
        assert_eq!(db.alphabets().edge_labels, 3);
    }

    #[test]
    fn gbd_between_matches_example_2() {
        let db = db();
        assert_eq!(db.gbd_between(0, 1), 3);
        assert_eq!(db.gbd_between(0, 0), 0);
    }

    #[test]
    fn gbd_to_external_query() {
        let db = db();
        let (q, _) = figure1_g1();
        let query = BranchMultiset::from_graph(&q);
        assert_eq!(db.gbd_to(&query, 0), 0);
        assert_eq!(db.gbd_to(&query, 1), 3);
        let flat = db.catalog().flatten_lookup(&query);
        assert_eq!(db.gbd_to_flat(flat.as_view(), 0), 0);
        assert_eq!(db.gbd_to_flat(flat.as_view(), 1), 3);
    }

    #[test]
    fn flat_storage_agrees_with_multisets() {
        let db = db();
        for i in 0..db.len() {
            assert_eq!(db.flat(i).len(), db.branches(i).len());
            for j in 0..db.len() {
                assert_eq!(
                    db.flat(i).gbd(db.flat(j)),
                    db.branches(i).gbd(db.branches(j)),
                    "flat and multiset GBD disagree on pair ({i}, {j})"
                );
            }
        }
        assert!(!db.catalog().is_empty());
        assert_eq!(
            db.arena_len(),
            db.flat(0).runs().len() + db.flat(1).runs().len()
        );
    }

    #[test]
    fn distinct_sizes_are_sorted_and_deduplicated() {
        let db = db();
        assert_eq!(db.distinct_sizes(), &[3, 4]);
    }

    #[test]
    fn aggregates_mirror_the_flat_sets() {
        let db = db();
        for i in 0..db.len() {
            assert_eq!(db.size_of(i), db.graph(i).vertex_count());
            assert_eq!(db.distinct_sizes()[db.bucket_of(i)], db.size_of(i));
            assert_eq!(db.distinct_runs(i), db.flat(i).runs().len());
            assert_eq!(
                db.max_run_count(i),
                db.flat(i).runs().iter().map(|r| r.count).max().unwrap_or(0)
            );
        }
    }

    #[test]
    fn inverted_index_reconstructs_every_flat_set() {
        let db = db();
        // Collect (graph, id, count) triples back out of the postings.
        let mut from_postings: Vec<Vec<(u32, u32)>> = vec![Vec::new(); db.len()];
        let mut total = 0usize;
        for id in 0..db.catalog().len() as u32 {
            let postings = db.postings(id);
            // Sorted by graph index within each list.
            assert!(postings.windows(2).all(|w| w[0].graph < w[1].graph));
            for p in postings {
                from_postings[p.graph as usize].push((id, p.count));
                total += 1;
            }
        }
        assert_eq!(total, db.postings_len());
        assert_eq!(db.postings_len(), db.arena_len());
        for (i, gathered) in from_postings.iter().enumerate() {
            let runs: Vec<(u32, u32)> = db.flat(i).runs().iter().map(|r| (r.id, r.count)).collect();
            // Postings were gathered in ascending id order, runs are sorted
            // by id, so the two sequences must be identical.
            assert_eq!(gathered, &runs, "postings diverge for graph {i}");
        }
    }

    #[test]
    fn rebuild_inverted_index_matches_the_stored_index() {
        let db = db();
        let (offsets, postings) = db.rebuild_inverted_index();
        assert_eq!(offsets.len(), db.catalog().len() + 1);
        assert_eq!(postings.len(), db.postings_len());
        for id in 0..db.catalog().len() as u32 {
            let rebuilt =
                &postings[offsets[id as usize] as usize..offsets[id as usize + 1] as usize];
            assert_eq!(rebuilt, db.postings(id));
        }
    }

    #[test]
    fn bucket_runs_are_maximal_and_cover_every_graph() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        // g1 has 4 vertices, g2 has 4 — an interleaving with a 2-vertex graph
        // forces several runs.
        let mut small = Graph::new();
        small.add_vertex(gbd_graph::Label::new(0));
        small.add_vertex(gbd_graph::Label::new(1));
        let db = GraphDatabase::from_graphs(vec![g1.clone(), g2, small, g1]);
        let runs = db.bucket_runs();
        // Coverage: runs partition 0..len in ascending order.
        let mut start = 0u32;
        for run in runs {
            assert!(run.end > start, "runs must be non-empty and ascending");
            for i in start..run.end {
                assert_eq!(db.bucket_of(i as usize) as u32, run.bucket);
            }
            start = run.end;
        }
        assert_eq!(start as usize, db.len());
        // Maximality: adjacent runs differ in bucket.
        assert!(runs.windows(2).all(|w| w[0].bucket != w[1].bucket));
        // Every adjacent pair lands in a different bucket → four runs.
        assert_eq!(runs.len(), 4);
        // An empty database has no runs.
        assert!(GraphDatabase::from_graphs(Vec::new())
            .bucket_runs()
            .is_empty());
    }

    #[test]
    fn explicit_alphabets_are_preserved() {
        let (g1, _) = figure1_g1();
        let db = GraphDatabase::with_alphabets(vec![g1], LabelAlphabets::new(20, 5));
        assert_eq!(db.alphabets().vertex_labels, 20);
        assert_eq!(db.alphabets().edge_labels, 5);
    }

    #[test]
    fn empty_database_is_well_defined() {
        let db = GraphDatabase::from_graphs(Vec::new());
        assert!(db.is_empty());
        assert_eq!(db.max_vertices(), 0);
        assert_eq!(db.arena_len(), 0);
        assert!(db.distinct_sizes().is_empty());
    }

    /// Aggregates and the inverted index stay well-defined on the degenerate
    /// databases the multi-graph tests never build.
    #[test]
    fn single_graph_database_aggregates_are_consistent() {
        let (g1, _) = figure1_g1();
        let db = GraphDatabase::from_graphs(vec![g1.clone()]);
        assert_eq!(db.len(), 1);
        assert_eq!(db.distinct_sizes(), &[g1.vertex_count()]);
        assert_eq!(db.bucket_of(0), 0);
        assert_eq!(db.size_of(0), g1.vertex_count());
        assert_eq!(db.distinct_runs(0), db.flat(0).runs().len());
        assert_eq!(db.postings_len(), db.arena_len());
        assert_eq!(db.gbd_between(0, 0), 0);
        assert!(db.verify_postings());
        // A graph with no edges still catalogues one branch per vertex.
        let mut lonely = Graph::new();
        lonely.add_vertex(gbd_graph::Label::new(0));
        let db = GraphDatabase::from_graphs(vec![lonely]);
        assert_eq!(db.size_of(0), 1);
        assert_eq!(db.distinct_runs(0), 1);
        assert_eq!(db.max_run_count(0), 1);
    }

    #[test]
    fn empty_database_postings_and_parts_are_consistent() {
        let db = GraphDatabase::from_graphs(Vec::new());
        assert!(db.verify_postings());
        let rebuilt = GraphDatabase::from_parts(db.to_parts()).unwrap();
        assert!(rebuilt.is_empty());
        assert_eq!(rebuilt.arena_len(), 0);
        assert!(rebuilt.catalog().is_empty());
    }

    fn parts_db() -> GraphDatabase {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let mut named = g1.clone();
        named.set_name("named-one");
        GraphDatabase::from_graphs(vec![named, g2, g1])
    }

    #[test]
    fn parts_round_trip_reconstructs_an_identical_database() {
        let db = parts_db();
        let rebuilt = GraphDatabase::from_parts(db.to_parts()).unwrap();
        assert_eq!(rebuilt.len(), db.len());
        assert_eq!(rebuilt.alphabets(), db.alphabets());
        assert_eq!(rebuilt.max_vertices(), db.max_vertices());
        assert_eq!(rebuilt.distinct_sizes(), db.distinct_sizes());
        assert_eq!(rebuilt.arena_len(), db.arena_len());
        assert_eq!(rebuilt.postings_len(), db.postings_len());
        for i in 0..db.len() {
            assert_eq!(rebuilt.graph(i).name(), db.graph(i).name());
            assert_eq!(rebuilt.flat(i).runs(), db.flat(i).runs());
            assert_eq!(rebuilt.size_of(i), db.size_of(i));
            assert_eq!(rebuilt.bucket_of(i), db.bucket_of(i));
            assert_eq!(rebuilt.distinct_runs(i), db.distinct_runs(i));
            assert_eq!(rebuilt.max_run_count(i), db.max_run_count(i));
            // The reconstructed multisets are the real thing: same branches,
            // same order, same GBD.
            assert_eq!(rebuilt.branches(i), db.branches(i));
            for j in 0..db.len() {
                assert_eq!(rebuilt.gbd_between(i, j), db.gbd_between(i, j));
            }
        }
        for id in 0..db.catalog().len() as u32 {
            assert_eq!(rebuilt.catalog().branch(id), db.catalog().branch(id));
            assert_eq!(rebuilt.postings(id), db.postings(id));
        }
        assert!(rebuilt.verify_postings());
    }

    #[test]
    fn corrupted_parts_are_rejected_not_panicked_on() {
        let db = parts_db();
        let corrupt = |mutate: &dyn Fn(&mut DatabaseParts)| {
            let mut parts = db.to_parts();
            mutate(&mut parts);
            GraphDatabase::from_parts(parts).unwrap_err()
        };
        type Mutation = Box<dyn Fn(&mut DatabaseParts)>;
        let cases: Vec<(&str, Mutation)> = vec![
            (
                "missing span",
                Box::new(|p| {
                    p.spans.pop();
                }),
            ),
            ("size mismatch", Box::new(|p| p.sizes[0] += 1)),
            ("stale bucket", Box::new(|p| p.buckets[0] = 1)),
            ("bucket out of range", Box::new(|p| p.buckets[0] = 99)),
            ("stale run count", Box::new(|p| p.run_counts[1] += 1)),
            ("stale max run", Box::new(|p| p.max_run_counts[1] += 1)),
            (
                "unsorted distinct sizes",
                Box::new(|p| p.distinct_sizes.reverse()),
            ),
            (
                "phantom distinct size",
                Box::new(|p| {
                    p.distinct_sizes.push(1000);
                }),
            ),
            (
                "duplicate catalog branch",
                Box::new(|p| p.branches[1] = p.branches[0].clone()),
            ),
            ("arena id out of range", Box::new(|p| p.arena[0].id = 9999)),
            ("zero-count run", Box::new(|p| p.arena[0].count = 0)),
            ("span overflow", Box::new(|p| p.spans[0].1 += 1)),
            (
                "offsets truncated",
                Box::new(|p| {
                    p.posting_offsets.pop();
                }),
            ),
            (
                "offsets not monotone",
                Box::new(|p| {
                    let last = p.posting_offsets.len() - 1;
                    p.posting_offsets[last] = 0;
                }),
            ),
            (
                "posting graph out of range",
                Box::new(|p| p.postings[0].graph = 99),
            ),
            (
                "postings dropped",
                Box::new(|p| {
                    p.postings.pop();
                }),
            ),
        ];
        for (name, mutate) in cases {
            let err = corrupt(&*mutate);
            assert!(
                matches!(err, EngineError::CorruptDatabase { .. }),
                "{name}: expected CorruptDatabase, got {err}"
            );
        }
    }
}
