//! The query execution layer: [`QueryEngine`].
//!
//! [`crate::GbdaSearcher`] answers one query with one sequential loop; this
//! module is the production-shaped engine behind it. One engine instance owns
//! the per-configuration memo state and offers three execution modes:
//!
//! * [`QueryEngine::search`] — one query, scanned over `config.shards`
//!   database shards with `std::thread::scope`,
//! * [`QueryEngine::search_batch`] — many queries, distributed over the
//!   shards (each worker scans its queries sequentially),
//! * [`QueryEngine::reference_search`] — the seed-faithful uncached
//!   sequential scan, kept as the equivalence baseline for tests and
//!   benchmarks.
//!
//! Per pair, the hot path is: one branchless merge over the flat interned
//! branch runs (`ϕ`), then either a [`PosteriorCache`] lookup or — when
//! posterior recording is off — a single integer comparison against the
//! per-size ϕ threshold. All modes return bit-identical matches and
//! posteriors because every path evaluates the same
//! [`gbd_prob::posterior_ged_at_most`] on the same inputs.

use std::collections::HashMap;
use std::ops::Range;
use std::time::Instant;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gbd_graph::{BranchMultiset, FlatBranchSet, Graph};
use gbd_prob::posterior_ged_at_most;

use crate::config::{GbdaConfig, GbdaVariant};
use crate::database::GraphDatabase;
use crate::offline::OfflineIndex;
use crate::posterior_cache::PosteriorCache;
use crate::search::{SearchOutcome, SearchStats};

/// Per-shard scan accounting, merged into [`SearchStats`].
#[derive(Debug, Clone, Copy, Default)]
struct ShardStats {
    cache_hits: usize,
    cache_misses: usize,
    threshold_accepts: usize,
    evaluated: usize,
}

impl ShardStats {
    fn absorb(&mut self, other: ShardStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.threshold_accepts += other.threshold_accepts;
        self.evaluated += other.evaluated;
    }
}

/// The GBDA query engine: database + offline index + configuration + memo
/// state (posterior cache and per-size ϕ thresholds).
pub struct QueryEngine<'a> {
    database: &'a GraphDatabase,
    index: &'a OfflineIndex,
    config: GbdaConfig,
    /// `|V'1|` override used by the GBDA-V1 variant.
    fixed_extended_size: Option<usize>,
    cache: PosteriorCache,
    /// `phi_thresholds[|V'1|]` is the largest ϕ of the contiguous prefix with
    /// `Φ ≥ γ` (`None` when even ϕ = 0 misses the bar).
    phi_thresholds: RwLock<HashMap<usize, Option<u64>>>,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine. For the GBDA-V1 variant the average extended size
    /// is sampled here, once, exactly as the paper describes.
    pub fn new(database: &'a GraphDatabase, index: &'a OfflineIndex, config: GbdaConfig) -> Self {
        let fixed_extended_size = match config.variant {
            GbdaVariant::AverageExtendedSize { sample_graphs } => {
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA1FA);
                let mut indices: Vec<usize> = (0..database.len()).collect();
                indices.shuffle(&mut rng);
                let sample: Vec<usize> = indices.into_iter().take(sample_graphs.max(1)).collect();
                let avg = sample
                    .iter()
                    .map(|&i| database.graph(i).vertex_count())
                    .sum::<usize>() as f64
                    / sample.len() as f64;
                Some(avg.round().max(1.0) as usize)
            }
            _ => None,
        };
        QueryEngine {
            database,
            index,
            fixed_extended_size,
            cache: PosteriorCache::new(config.tau_hat),
            phi_thresholds: RwLock::new(HashMap::new()),
            config,
        }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &GbdaConfig {
        &self.config
    }

    /// The database scanned by this engine.
    pub fn database(&self) -> &GraphDatabase {
        self.database
    }

    /// The offline index backing the probabilistic model.
    pub fn index(&self) -> &OfflineIndex {
        self.index
    }

    /// The fixed `|V'1|` of the GBDA-V1 variant, if active.
    pub fn fixed_extended_size(&self) -> Option<usize> {
        self.fixed_extended_size
    }

    /// The shared posterior memo.
    pub fn posterior_cache(&self) -> &PosteriorCache {
        &self.cache
    }

    /// The branch distance fed into the model for one pair, honouring the
    /// GBDA-V2 variant (Equation 26). The value is rounded to the nearest
    /// integer ϕ because the model is defined over integer branch distances.
    ///
    /// This diagnostic path merges the stored multisets directly; scans use
    /// the flat interned runs via one per-query flatten instead.
    pub fn observed_phi(&self, query: &BranchMultiset, graph_index: usize) -> u64 {
        match self.config.variant {
            GbdaVariant::WeightedGbd { weight } => {
                let value = query.weighted_gbd(self.database.branches(graph_index), weight);
                value.round().max(0.0) as u64
            }
            _ => self.database.gbd_to(query, graph_index) as u64,
        }
    }

    fn observed_phi_flat(&self, query: &FlatBranchSet, graph_index: usize) -> u64 {
        match self.config.variant {
            GbdaVariant::WeightedGbd { weight } => {
                let value = query
                    .as_view()
                    .weighted_gbd(self.database.flat(graph_index), weight);
                value.round().max(0.0) as u64
            }
            _ => query.as_view().gbd(self.database.flat(graph_index)) as u64,
        }
    }

    /// The extended size `|V'1|` used for one pair, honouring GBDA-V1.
    fn extended_size(&self, query: &Graph, graph_index: usize) -> usize {
        match self.fixed_extended_size {
            Some(v) => v,
            None => query
                .vertex_count()
                .max(self.database.graph(graph_index).vertex_count())
                .max(1),
        }
    }

    /// The memoized posterior `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]` for one
    /// `(|V'1|, ϕ)` key.
    pub fn posterior_value(&self, extended_size: usize, phi: u64) -> f64 {
        self.cache.posterior(self.index, extended_size, phi)
    }

    /// The largest ϕ of the contiguous prefix `{0, 1, …}` whose posteriors
    /// all clear `γ`, for one extended size; `None` when ϕ = 0 already
    /// misses. Exploits that `Φ` decays in ϕ in practice: a scan can then
    /// accept `ϕ ≤ threshold` with a single integer comparison. Values past
    /// the prefix still fall back to a memoized posterior compare, so
    /// non-monotone tails cannot change any result.
    pub fn phi_threshold(&self, extended_size: usize) -> Option<u64> {
        if let Some(&threshold) = self.phi_thresholds.read().get(&extended_size) {
            return threshold;
        }
        let cap = self.database.max_vertices().max(extended_size) as u64;
        let mut threshold = None;
        for phi in 0..=cap {
            if self.cache.posterior(self.index, extended_size, phi) >= self.config.gamma {
                threshold = Some(phi);
            } else {
                break;
            }
        }
        self.phi_thresholds.write().insert(extended_size, threshold);
        threshold
    }

    /// Runs Algorithm 1 for one query graph over `config.shards` database
    /// shards.
    pub fn search(&self, query: &Graph) -> SearchOutcome {
        self.search_with_shards(query, self.config.shards)
    }

    /// Runs a batch of queries, distributing them over `config.shards`
    /// worker threads. Each worker scans its queries sequentially; all
    /// workers share the posterior memo. Outcomes keep the input order and
    /// are identical to running [`Self::search`] per query.
    pub fn search_batch(&self, queries: &[Graph]) -> Vec<SearchOutcome> {
        let shards = self.config.shards.max(1);
        if shards <= 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.search(q)).collect();
        }
        let workers = shards.min(queries.len());
        let chunk = queries.len().div_ceil(workers);
        let mut outcomes: Vec<Option<SearchOutcome>> = Vec::new();
        outcomes.resize_with(queries.len(), || None);
        std::thread::scope(|scope| {
            for (query_chunk, outcome_chunk) in
                queries.chunks(chunk).zip(outcomes.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for (query, slot) in query_chunk.iter().zip(outcome_chunk.iter_mut()) {
                        *slot = Some(self.search_with_shards(query, 1));
                    }
                });
            }
        });
        outcomes
            .into_iter()
            .map(|outcome| outcome.expect("every batch slot is filled by its worker"))
            .collect()
    }

    fn search_with_shards(&self, query: &Graph, shards: usize) -> SearchOutcome {
        let started = Instant::now();
        let flatten_started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = self.database.catalog().flatten_lookup(&query_branches);
        let flatten_seconds = flatten_started.elapsed().as_secs_f64();

        let n = self.database.len();
        let shards = shards.max(1).min(n.max(1));
        let record = self.config.record_posteriors;
        let mut posteriors = if record { vec![0.0f64; n] } else { Vec::new() };

        let scan_started = Instant::now();
        let mut matches = Vec::new();
        let mut totals = ShardStats::default();
        if shards <= 1 {
            let slice = record.then_some(posteriors.as_mut_slice());
            let (shard_matches, stats) = self.scan_range(query, &query_flat, 0..n, slice);
            matches = shard_matches;
            totals.absorb(stats);
        } else {
            let chunk = n.div_ceil(shards);
            let ranges: Vec<Range<usize>> = (0..shards)
                .map(|k| (k * chunk)..n.min((k + 1) * chunk))
                .collect();
            let mut results: Vec<(Vec<usize>, ShardStats)> = Vec::with_capacity(shards);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(shards);
                if record {
                    for (range, slice) in ranges.iter().cloned().zip(posteriors.chunks_mut(chunk)) {
                        let query_flat = &query_flat;
                        handles.push(
                            scope.spawn(move || {
                                self.scan_range(query, query_flat, range, Some(slice))
                            }),
                        );
                    }
                } else {
                    for range in ranges.iter().cloned() {
                        let query_flat = &query_flat;
                        handles.push(
                            scope.spawn(move || self.scan_range(query, query_flat, range, None)),
                        );
                    }
                }
                for handle in handles {
                    results.push(handle.join().expect("scan shard panicked"));
                }
            });
            // Shards cover contiguous index ranges in order, so concatenating
            // preserves the database ordering of matches.
            for (shard_matches, stats) in results {
                matches.extend(shard_matches);
                totals.absorb(stats);
            }
        }

        SearchOutcome {
            matches,
            posteriors,
            seconds: started.elapsed().as_secs_f64(),
            stats: SearchStats {
                shards,
                flatten_seconds,
                scan_seconds: scan_started.elapsed().as_secs_f64(),
                cache_hits: totals.cache_hits,
                cache_misses: totals.cache_misses,
                threshold_accepts: totals.threshold_accepts,
                evaluated: totals.evaluated,
            },
        }
    }

    /// Scans one contiguous database range; `posteriors` (when recording) is
    /// the output slice for exactly that range.
    ///
    /// Each scan keeps a thread-local memo in front of the shared
    /// [`PosteriorCache`], so the steady-state inner loop touches no lock at
    /// all — repeated `(|V'1|, ϕ)` keys within one shard resolve locally.
    fn scan_range(
        &self,
        query: &Graph,
        query_flat: &FlatBranchSet,
        range: Range<usize>,
        mut posteriors: Option<&mut [f64]>,
    ) -> (Vec<usize>, ShardStats) {
        let mut matches = Vec::new();
        let mut stats = ShardStats::default();
        let mut local: HashMap<(usize, u64), f64> = HashMap::new();
        let start = range.start;
        for i in range {
            stats.evaluated += 1;
            let phi = self.observed_phi_flat(query_flat, i);
            let extended_size = self.extended_size(query, i);
            if posteriors.is_none() {
                if let Some(threshold) = self.phi_threshold(extended_size) {
                    if phi <= threshold {
                        stats.threshold_accepts += 1;
                        matches.push(i);
                        continue;
                    }
                }
            }
            let key = (extended_size, phi);
            let posterior = match local.get(&key) {
                Some(&posterior) => {
                    stats.cache_hits += 1;
                    posterior
                }
                None => {
                    let (posterior, hit) =
                        self.cache.posterior_tracked(self.index, extended_size, phi);
                    local.insert(key, posterior);
                    if hit {
                        stats.cache_hits += 1;
                    } else {
                        stats.cache_misses += 1;
                    }
                    posterior
                }
            };
            if let Some(slice) = posteriors.as_deref_mut() {
                slice[i - start] = posterior;
            }
            if posterior >= self.config.gamma {
                matches.push(i);
            }
        }
        (matches, stats)
    }

    /// The seed-faithful sequential scan: branch-multiset merges and a fresh
    /// posterior evaluation per database graph, no memoization, no flat
    /// storage, no sharding. Kept as the equivalence baseline for tests and
    /// the `online_syn` benchmark.
    pub fn reference_search(&self, query: &Graph) -> SearchOutcome {
        let started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let mut matches = Vec::new();
        let mut posteriors = Vec::with_capacity(self.database.len());
        for i in 0..self.database.len() {
            let phi = match self.config.variant {
                GbdaVariant::WeightedGbd { weight } => {
                    let value = query_branches.weighted_gbd(self.database.branches(i), weight);
                    value.round().max(0.0) as u64
                }
                _ => self.database.gbd_to(&query_branches, i) as u64,
            };
            let extended_size = self.extended_size(query, i);
            let lambda1 = self.index.lambda1_table(extended_size);
            let ged_prior = self.index.ged_prior().column(extended_size);
            let gbd_prior = self.index.gbd_prior().probability(phi as usize);
            let posterior =
                posterior_ged_at_most(self.config.tau_hat, phi, &lambda1, &ged_prior, gbd_prior);
            posteriors.push(posterior);
            if posterior >= self.config.gamma {
                matches.push(i);
            }
        }
        SearchOutcome {
            matches,
            posteriors,
            seconds: started.elapsed().as_secs_f64(),
            stats: SearchStats {
                shards: 1,
                evaluated: self.database.len(),
                cache_misses: self.database.len(),
                ..SearchStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::known_ged::ModificationMode;
    use gbd_graph::{GeneratorConfig, KnownGedConfig, KnownGedFamily, LabelAlphabets};

    fn family_setup(tau_hat: u64) -> (KnownGedFamily, GraphDatabase, GbdaConfig) {
        let mut rng = StdRng::seed_from_u64(40);
        let base = GeneratorConfig::new(20, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        let cfg = KnownGedConfig::new(base, 10, 30, 10).with_mode(ModificationMode::RelabelEdges);
        let family = KnownGedFamily::generate(&cfg, &mut rng).unwrap();
        let graphs: Vec<_> = family.members().iter().map(|m| m.graph().clone()).collect();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(tau_hat, 0.5).with_sample_pairs(400);
        (family, database, config)
    }

    fn outcomes_identical(a: &SearchOutcome, b: &SearchOutcome) {
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.posteriors.len(), b.posteriors.len());
        for (x, y) in a.posteriors.iter().zip(&b.posteriors) {
            assert_eq!(x.to_bits(), y.to_bits(), "posteriors diverge");
        }
    }

    #[test]
    fn engine_matches_the_seed_reference_path() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config);
        for q in 0..3 {
            let query = family.member_graph(q).clone();
            outcomes_identical(&engine.search(&query), &engine.reference_search(&query));
        }
    }

    #[test]
    fn sharded_scan_equals_sequential_scan() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let sequential = QueryEngine::new(&database, &index, config.clone());
        let sharded = QueryEngine::new(&database, &index, config.with_shards(4));
        let query = family.member_graph(0).clone();
        let a = sequential.search(&query);
        let b = sharded.search(&query);
        outcomes_identical(&a, &b);
        assert_eq!(b.stats.shards, 4);
        assert_eq!(b.stats.evaluated, database.len());
    }

    #[test]
    fn shards_never_exceed_the_database_size() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config.with_shards(10_000));
        let outcome = engine.search(family.member_graph(0));
        assert!(outcome.stats.shards <= database.len());
    }

    #[test]
    fn batch_search_keeps_order_and_equals_per_query_search() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config.with_shards(3));
        let queries: Vec<Graph> = (0..5).map(|i| family.member_graph(i).clone()).collect();
        let batch = engine.search_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (query, outcome) in queries.iter().zip(&batch) {
            outcomes_identical(outcome, &engine.search(query));
        }
    }

    #[test]
    fn memoization_collapses_the_scan_to_few_evaluations() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config);
        let query = family.member_graph(0).clone();
        let first = engine.search(&query);
        // Misses are bounded by |sizes| × (ϕ_max + 1), not by |D|.
        let bound =
            database.distinct_sizes().len() * (database.max_vertices() + query.vertex_count() + 1);
        assert!(first.stats.cache_misses <= bound);
        // A repeat scan is answered entirely from the memo.
        let second = engine.search(&query);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, database.len());
        outcomes_identical(&first, &second);
    }

    #[test]
    fn threshold_fast_path_returns_identical_matches() {
        let (family, database, config) = family_setup(5);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let recording = QueryEngine::new(&database, &index, config.clone());
        let fast = QueryEngine::new(&database, &index, config.with_record_posteriors(false));
        for q in 0..4 {
            let query = family.member_graph(q).clone();
            let a = recording.search(&query);
            let b = fast.search(&query);
            assert_eq!(a.matches, b.matches, "fast path diverges on query {q}");
            assert!(b.posteriors.is_empty());
        }
        // The fast path actually exercises the integer comparison.
        let outcome = fast.search(family.member_graph(0));
        assert!(outcome.stats.threshold_accepts > 0);
    }

    #[test]
    fn phi_threshold_is_the_largest_accepting_prefix() {
        let (_, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let gamma = config.gamma;
        let engine = QueryEngine::new(&database, &index, config);
        let size = database.max_vertices();
        match engine.phi_threshold(size) {
            Some(t) => {
                for phi in 0..=t {
                    assert!(engine.posterior_value(size, phi) >= gamma);
                }
                assert!(engine.posterior_value(size, t + 1) < gamma);
            }
            None => assert!(engine.posterior_value(size, 0) < gamma),
        }
    }

    #[test]
    fn variant_v1_uses_a_fixed_extended_size() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let v1 = config
            .clone()
            .with_variant(GbdaVariant::AverageExtendedSize { sample_graphs: 5 });
        let engine = QueryEngine::new(&database, &index, v1);
        assert!(engine.fixed_extended_size().is_some());
        let outcome = engine.search(family.member_graph(1));
        assert_eq!(outcome.posteriors.len(), database.len());
        outcomes_identical(&outcome, &engine.reference_search(family.member_graph(1)));
    }

    #[test]
    fn variant_v2_changes_the_observed_distance() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let standard = QueryEngine::new(&database, &index, config.clone());
        let v2 = QueryEngine::new(
            &database,
            &index,
            config.with_variant(GbdaVariant::WeightedGbd { weight: 0.1 }),
        );
        let query = family.member_graph(0).clone();
        let branches = BranchMultiset::from_graph(&query);
        // With w = 0.1 the intersection barely counts, so the observed ϕ is
        // larger than the true GBD for the identical graph.
        assert!(v2.observed_phi(&branches, 0) > standard.observed_phi(&branches, 0));
        outcomes_identical(&v2.search(&query), &v2.reference_search(&query));
    }
}
