//! The query execution layer: [`QueryEngine`].
//!
//! [`crate::GbdaSearcher`] answers one query with one sequential loop; this
//! module is the production-shaped engine behind it. One engine instance owns
//! the per-configuration memo state and offers three execution modes:
//!
//! * [`QueryEngine::search`] — one query, scanned over `config.shards`
//!   database shards with `std::thread::scope`,
//! * [`QueryEngine::search_batch`] — many queries, distributed over the
//!   shards (each worker scans its queries sequentially),
//! * [`QueryEngine::reference_search`] — the seed-faithful uncached
//!   sequential scan, kept as the equivalence baseline for tests and
//!   benchmarks.
//!
//! Per pair, the hot path depends on [`GbdaConfig::filter_cascade`]. With
//! the cascade on (the default), most graphs are resolved by the pruning
//! layer of [`crate::filter`]: whole size buckets are accepted or rejected
//! from the L1 size bound, per-graph aggregates refine the bound, and the
//! inverted-index count filter supplies the exact `ϕ` of the survivors —
//! without merging a single branch run. With the cascade off, every pair
//! pays one branchless merge over the flat interned branch runs, then
//! either a [`PosteriorCache`] lookup or — when posterior recording is off —
//! a single integer comparison against the per-size ϕ threshold. All modes
//! return bit-identical matches and posteriors because every path evaluates
//! the same [`gbd_prob::posterior_ged_at_most`] on the same inputs, and the
//! count filter reproduces the merge's intersection exactly.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gbd_graph::{BranchMultiset, FlatBranchSet, Graph};
use gbd_prob::posterior_ged_at_most;

use crate::config::{GbdaConfig, GbdaVariant};
use crate::database::GraphDatabase;
use crate::filter::planner::{Planner, QueryPlan};
use crate::filter::{compute_rank_decision, RankDecision, SizeDecision};
use crate::kernel::{
    run_batch, scan_shards, CollectAll, ScanKernel, StaticPhi, Subscriber, TighteningRank, TopKSink,
};
use crate::offline::OfflineIndex;
use crate::posterior_cache::PosteriorCache;
use crate::search::{SearchOutcome, SearchStats};
use crate::topk::{merge_ranked, rank_by_posterior, RankedHit, TopKOutcome};

/// The GBDA-V1 extended-size sampling: shuffle the graph positions with the
/// variant's derived seed, take `sample_graphs`, average their vertex
/// counts. Shared by [`QueryEngine`] and [`crate::DynamicEngine`] — the
/// dynamic engine's bit-identity contract requires the two to stay in
/// lock-step, so there is exactly one implementation.
pub(crate) fn average_extended_size(
    seed: u64,
    sample_graphs: usize,
    vertex_counts: &[usize],
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA1FA);
    let mut indices: Vec<usize> = (0..vertex_counts.len()).collect();
    indices.shuffle(&mut rng);
    let sample: Vec<usize> = indices.into_iter().take(sample_graphs.max(1)).collect();
    let avg = sample.iter().map(|&i| vertex_counts[i]).sum::<usize>() as f64 / sample.len() as f64;
    avg.round().max(1.0) as usize
}

/// Memoized posterior lookup through a scan's thread-local memo in front of
/// the shared [`PosteriorCache`], so the steady-state inner loop touches no
/// lock at all. Shared by [`QueryEngine`] and [`crate::DynamicEngine`] for
/// the same lock-step reason as [`average_extended_size`].
pub(crate) fn lookup_posterior_memoized(
    cache: &PosteriorCache,
    index: &OfflineIndex,
    local: &mut HashMap<(usize, u64), f64>,
    stats: &mut SearchStats,
    extended_size: usize,
    phi: u64,
) -> f64 {
    let key = (extended_size, phi);
    match local.get(&key) {
        Some(&posterior) => {
            stats.cache_hits += 1;
            posterior
        }
        None => {
            let (posterior, hit) = cache.posterior_tracked(index, extended_size, phi);
            local.insert(key, posterior);
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
            }
            posterior
        }
    }
}

/// The GBDA query engine: database + offline index + configuration + memo
/// state (posterior cache and per-size ϕ thresholds).
pub struct QueryEngine<'a> {
    database: &'a GraphDatabase,
    index: &'a OfflineIndex,
    config: GbdaConfig,
    /// `|V'1|` override used by the GBDA-V1 variant.
    fixed_extended_size: Option<usize>,
    cache: PosteriorCache,
    /// Memoized per-extended-size accept/reject regions of the posterior
    /// (see [`SizeDecision`]); shared by the threshold fast path and the
    /// filter cascade.
    decisions: RwLock<HashMap<usize, SizeDecision>>,
    /// Memoized per-extended-size posterior suffix-maximum tables (see
    /// [`RankDecision`]) used by ranked (top-k) scans.
    rank_decisions: RwLock<HashMap<usize, Arc<RankDecision>>>,
    /// The per-query stage planner, fed every finished search's stats
    /// (bypassed under [`GbdaConfig::force_fixed_pipeline`]).
    planner: Planner,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine. For the GBDA-V1 variant the average extended size
    /// is sampled here, once, exactly as the paper describes.
    pub fn new(database: &'a GraphDatabase, index: &'a OfflineIndex, config: GbdaConfig) -> Self {
        let fixed_extended_size = match config.variant {
            GbdaVariant::AverageExtendedSize { sample_graphs } => {
                let counts: Vec<usize> = (0..database.len()).map(|i| database.size_of(i)).collect();
                Some(average_extended_size(config.seed, sample_graphs, &counts))
            }
            _ => None,
        };
        gbd_telemetry::escalate_level(config.telemetry);
        QueryEngine {
            database,
            index,
            fixed_extended_size,
            cache: PosteriorCache::new(config.tau_hat),
            decisions: RwLock::new(HashMap::new()),
            rank_decisions: RwLock::new(HashMap::new()),
            planner: Planner::new(),
            config,
        }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &GbdaConfig {
        &self.config
    }

    /// The database scanned by this engine.
    pub fn database(&self) -> &GraphDatabase {
        self.database
    }

    /// The offline index backing the probabilistic model.
    pub fn index(&self) -> &OfflineIndex {
        self.index
    }

    /// The fixed `|V'1|` of the GBDA-V1 variant, if active.
    pub fn fixed_extended_size(&self) -> Option<usize> {
        self.fixed_extended_size
    }

    /// The shared posterior memo.
    pub fn posterior_cache(&self) -> &PosteriorCache {
        &self.cache
    }

    /// The branch distance fed into the model for one pair, honouring the
    /// GBDA-V2 variant (Equation 26). The value is rounded to the nearest
    /// integer ϕ because the model is defined over integer branch distances.
    ///
    /// This diagnostic path merges the stored multisets directly; scans use
    /// the flat interned runs via one per-query flatten instead.
    pub fn observed_phi(&self, query: &BranchMultiset, graph_index: usize) -> u64 {
        match self.config.variant {
            GbdaVariant::WeightedGbd { weight } => {
                let value = query.weighted_gbd(self.database.branches(graph_index), weight);
                value.round().max(0.0) as u64
            }
            _ => self.database.gbd_to(query, graph_index) as u64,
        }
    }

    fn observed_phi_flat(&self, query: &FlatBranchSet, graph_index: usize) -> u64 {
        match self.config.variant {
            GbdaVariant::WeightedGbd { weight } => {
                let value = query
                    .as_view()
                    .weighted_gbd(self.database.flat(graph_index), weight);
                value.round().max(0.0) as u64
            }
            _ => query.as_view().gbd(self.database.flat(graph_index)) as u64,
        }
    }

    /// The extended size `|V'1|` used for one pair, honouring GBDA-V1.
    fn extended_size(&self, query: &Graph, graph_index: usize) -> usize {
        self.extended_size_for(query.vertex_count(), self.database.size_of(graph_index))
    }

    /// [`Self::extended_size`] over raw vertex counts — the scan-side form
    /// that reads the database's flat size array instead of a `Graph`.
    fn extended_size_for(&self, query_size: usize, graph_size: usize) -> usize {
        match self.fixed_extended_size {
            Some(v) => v,
            None => query_size.max(graph_size).max(1),
        }
    }

    /// The memoized posterior `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]` for one
    /// `(|V'1|, ϕ)` key.
    pub fn posterior_value(&self, extended_size: usize, phi: u64) -> f64 {
        self.cache.posterior(self.index, extended_size, phi)
    }

    /// The accept/reject regions of the posterior for one extended size,
    /// computed once per engine from the memoized posterior and cached.
    ///
    /// The accepting prefix is the largest contiguous `{0, 1, …}` range
    /// whose posteriors all clear `γ`; the rejecting suffix is the largest
    /// contiguous tail up to `cap` whose posteriors all miss it. ϕ values
    /// between the regions (possible when `Φ` is non-monotone in ϕ) fall
    /// back to a memoized posterior compare, so the regions cannot change
    /// any result.
    pub fn size_decision(&self, extended_size: usize) -> SizeDecision {
        if let Some(&decision) = self.decisions.read().get(&extended_size) {
            return decision;
        }
        let cap = self.database.max_vertices().max(extended_size) as u64;
        let decision = crate::filter::compute_size_decision(
            &self.cache,
            self.index,
            self.config.gamma,
            extended_size,
            cap,
        );
        self.decisions.write().insert(extended_size, decision);
        decision
    }

    /// The largest ϕ of the contiguous prefix `{0, 1, …}` whose posteriors
    /// all clear `γ`, for one extended size; `None` when ϕ = 0 already
    /// misses. Exploits that `Φ` decays in ϕ in practice: a scan can then
    /// accept `ϕ ≤ threshold` with a single integer comparison.
    pub fn phi_threshold(&self, extended_size: usize) -> Option<u64> {
        self.size_decision(extended_size).accept_max
    }

    /// The posterior suffix-maximum table for one extended size, computed
    /// once per engine from the memoized posterior and cached — the ranked
    /// counterpart of [`Self::size_decision`]. Ranked scans compare a
    /// graph's ϕ lower bound against this table under the running k-th-best
    /// posterior to reject graphs without resolving them.
    pub fn rank_decision(&self, extended_size: usize) -> Arc<RankDecision> {
        if let Some(decision) = self.rank_decisions.read().get(&extended_size) {
            return Arc::clone(decision);
        }
        let cap = self.database.max_vertices().max(extended_size) as u64;
        let decision = Arc::new(compute_rank_decision(
            &self.cache,
            self.index,
            extended_size,
            cap,
        ));
        Arc::clone(
            self.rank_decisions
                .write()
                .entry(extended_size)
                .or_insert(decision),
        )
    }

    /// Runs Algorithm 1 for one query graph over `config.shards` database
    /// shards.
    pub fn search(&self, query: &Graph) -> SearchOutcome {
        self.search_with_shards(query, self.config.shards)
    }

    /// Runs a batch of queries over `config.shards` worker threads. One
    /// thread scope is built for the whole batch and the workers pull
    /// queries from a shared cursor (work stealing), so a handful of slow
    /// queries cannot idle the other workers the way fixed chunks would.
    /// All workers share the posterior memo. Outcomes keep the input order
    /// and are identical to running [`Self::search`] per query.
    pub fn search_batch(&self, queries: &[Graph]) -> Vec<SearchOutcome> {
        self.search_batch_with_stats(queries).0
    }

    /// [`Self::search_batch`] plus the batch-aggregated [`SearchStats`]:
    /// counters (including the filter cascade's per-stage skip counts) are
    /// summed over all queries, timings are summed, and `shards` reports
    /// the number of worker threads the batch actually used.
    ///
    /// Aggregation loses the per-query latency resolution, but each query
    /// of the batch feeds the workspace telemetry histograms
    /// (`gbda_query_seconds` & co, see the `gbd-telemetry` crate) before
    /// its stats are absorbed, so the distribution survives there.
    pub fn search_batch_with_stats(&self, queries: &[Graph]) -> (Vec<SearchOutcome>, SearchStats) {
        let (outcomes, batch_workers) =
            run_batch(self.config.shards.max(1), queries, |query, shards| {
                self.search_with_shards(query, shards)
            });
        let mut stats = SearchStats::default();
        for outcome in &outcomes {
            stats.absorb(&outcome.stats);
        }
        // Work-stealing workers scan each query unsharded (shards = 1 in
        // every outcome), so report the batch's actual worker count instead.
        if let Some(workers) = batch_workers {
            stats.shards = workers;
        }
        (outcomes, stats)
    }

    /// The GBDA-V2 weight, `None` for the other variants.
    fn weight(&self) -> Option<f64> {
        match self.config.variant {
            GbdaVariant::WeightedGbd { weight } => Some(weight),
            _ => None,
        }
    }

    /// Builds the [`ScanKernel`] for one flattened query over the database —
    /// the per-query state every shard of a scan shares. The kernel carries
    /// the stage schedule the planner chose for this query (or the fixed
    /// pipeline under [`GbdaConfig::force_fixed_pipeline`]).
    fn kernel<'q>(
        &'q self,
        query_size: usize,
        query_flat: &'q FlatBranchSet,
    ) -> ScanKernel<'q, GraphDatabase> {
        let plan = if self.config.force_fixed_pipeline {
            QueryPlan::fixed()
        } else {
            self.planner.plan_for(self.database, query_flat)
        };
        ScanKernel::new(
            self.database,
            query_flat,
            query_size,
            self.fixed_extended_size,
            self.weight(),
            self.config.filter_cascade,
        )
        .with_plan(plan)
    }

    fn search_with_shards(&self, query: &Graph, shards: usize) -> SearchOutcome {
        let _span = gbd_telemetry::Span::enter("engine.search");
        let started = Instant::now();
        let flatten_started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = self.database.catalog().flatten_lookup(&query_branches);
        let kernel = self.kernel(query.vertex_count(), &query_flat);
        let cutoff = StaticPhi::prepare(
            &kernel,
            self.config.gamma,
            self.config.record_posteriors,
            |extended_size| self.size_decision(extended_size),
        );
        let flatten_seconds = flatten_started.elapsed().as_secs_f64();

        let n = self.database.len();
        let shards = shards.max(1).min(n.max(1));
        let record = self.config.record_posteriors;

        let scan_started = Instant::now();
        let results = scan_shards(n, shards, |range| {
            let mut sink = CollectAll::new(record);
            let mut stats = SearchStats::default();
            let mut local: HashMap<(usize, u64), f64> = HashMap::new();
            kernel.scan(
                range,
                &cutoff,
                &mut sink,
                &mut stats,
                |_| false,
                |i| i,
                |stats, extended_size, phi| {
                    lookup_posterior_memoized(
                        &self.cache,
                        self.index,
                        &mut local,
                        stats,
                        extended_size,
                        phi,
                    )
                },
            );
            (sink, stats)
        });
        // Shards cover contiguous index ranges in order, so concatenating
        // preserves the database ordering of matches and posteriors.
        let mut matches = Vec::new();
        let mut posteriors = Vec::new();
        let mut totals = SearchStats::default();
        for (sink, stats) in results {
            matches.extend(sink.matches);
            posteriors.extend(sink.posteriors);
            totals.absorb(&stats);
        }
        totals.shards = shards;
        totals.flatten_seconds = flatten_seconds;
        totals.scan_seconds = scan_started.elapsed().as_secs_f64();
        if !self.config.force_fixed_pipeline {
            Planner::book(kernel.plan(), &mut totals);
            self.planner.observe(&totals);
        }
        let seconds = started.elapsed().as_secs_f64();
        crate::obs::record_search(&totals, seconds);

        SearchOutcome {
            matches,
            posteriors,
            seconds,
            stats: totals,
        }
    }

    /// Runs Algorithm 1 for one query, delivering hits to `on_match` as the
    /// (single-threaded, ascending-index) scan finds them instead of
    /// buffering a result set — the [`Subscriber`]-sink instantiation of the
    /// kernel. Fast-path accepts arrive with `None` (their posterior was
    /// never resolved); resolved hits carry `Some(Φ)`, and every hit carries
    /// one when [`GbdaConfig::record_posteriors`] is on. The delivered id
    /// set is exactly [`Self::search`]'s `matches`, in the same order.
    pub fn search_streaming<F>(&self, query: &Graph, on_match: F) -> SearchStats
    where
        F: FnMut(usize, Option<f64>),
    {
        let _span = gbd_telemetry::Span::enter("engine.search_streaming");
        let started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = self.database.catalog().flatten_lookup(&query_branches);
        let kernel = self.kernel(query.vertex_count(), &query_flat);
        let cutoff = StaticPhi::prepare(
            &kernel,
            self.config.gamma,
            self.config.record_posteriors,
            |extended_size| self.size_decision(extended_size),
        );
        let mut sink = Subscriber::new(on_match);
        let mut stats = SearchStats {
            shards: 1,
            ..SearchStats::default()
        };
        let mut local: HashMap<(usize, u64), f64> = HashMap::new();
        kernel.scan(
            0..self.database.len(),
            &cutoff,
            &mut sink,
            &mut stats,
            |_| false,
            |i| i,
            |stats, extended_size, phi| {
                lookup_posterior_memoized(
                    &self.cache,
                    self.index,
                    &mut local,
                    stats,
                    extended_size,
                    phi,
                )
            },
        );
        if !self.config.force_fixed_pipeline {
            Planner::book(kernel.plan(), &mut stats);
            self.planner.observe(&stats);
        }
        crate::obs::record_search(&stats, started.elapsed().as_secs_f64());
        stats
    }

    /// Runs a **ranked** query: the `k` database graphs with the highest
    /// posterior `Φ = Pr[GED ≤ τ̂ | GBD]`, best first, scanned over
    /// `config.shards` shards.
    ///
    /// # Determinism
    ///
    /// Results are bit-identical to "scan every graph threshold-free, sort
    /// under [`crate::topk::rank_order`] — the canonical ranking total order
    /// — truncate to `k`" ([`Self::top_k_reference`]), for every variant,
    /// cascade mode and shard count, run-to-run. `γ` plays no role in
    /// ranked queries, and [`GbdaConfig::record_posteriors`] is ignored:
    /// the hits carry their posteriors, and no full posterior array is
    /// materialised.
    ///
    /// With the cascade on, the running k-th-best posterior of the
    /// (per-shard) heap is converted into a per-extended-size ϕ cutoff via
    /// the monotone posterior suffix-maximum tables ([`RankDecision`]) and
    /// fed back into the [`crate::FilterCascade`] bound stages — a dynamically
    /// *tightening* bound that rejects ever more graphs as better candidates
    /// accumulate. Per-shard heaps are merged by re-sorting under
    /// [`crate::topk::merge_ranked`], which keeps sharded scans identical to
    /// sequential ones.
    ///
    /// # Examples
    ///
    /// ```
    /// use gbd_graph::GeneratorConfig;
    /// use gbda_core::{GbdaConfig, GraphDatabase, OfflineIndex, QueryEngine};
    /// use rand::SeedableRng;
    ///
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let graphs = GeneratorConfig::new(12, 2.0).generate_many(30, &mut rng).unwrap();
    /// let query = graphs[0].clone();
    /// let database = GraphDatabase::from_graphs(graphs);
    /// let config = GbdaConfig::new(3, 0.8).with_sample_pairs(200);
    /// let index = OfflineIndex::build(&database, &config).unwrap();
    /// let engine = QueryEngine::new(&database, &index, config);
    ///
    /// let top = engine.search_top_k(&query, 5);
    /// assert_eq!(top.hits.len(), 5);
    /// assert!(top.hits.iter().any(|hit| hit.id == 0)); // the query itself ranks in its own top 5
    /// assert!(top.hits[0].posterior >= top.hits[4].posterior); // best first
    /// ```
    pub fn search_top_k(&self, query: &Graph, k: usize) -> TopKOutcome {
        self.search_top_k_with_shards(query, k, self.config.shards)
    }

    /// Runs a batch of ranked queries over `config.shards` worker threads
    /// (the same work-stealing scaffold as [`Self::search_batch`]). Outcomes
    /// keep the input order and are identical to running
    /// [`Self::search_top_k`] per query.
    pub fn search_top_k_batch(&self, queries: &[Graph], k: usize) -> Vec<TopKOutcome> {
        self.search_top_k_batch_with_stats(queries, k).0
    }

    /// [`Self::search_top_k_batch`] plus the batch-aggregated
    /// [`SearchStats`], mirroring [`Self::search_batch_with_stats`].
    pub fn search_top_k_batch_with_stats(
        &self,
        queries: &[Graph],
        k: usize,
    ) -> (Vec<TopKOutcome>, SearchStats) {
        let (outcomes, batch_workers) =
            run_batch(self.config.shards.max(1), queries, |query, shards| {
                self.search_top_k_with_shards(query, k, shards)
            });
        let mut stats = SearchStats::default();
        for outcome in &outcomes {
            stats.absorb(&outcome.stats);
        }
        if let Some(workers) = batch_workers {
            stats.shards = workers;
        }
        (outcomes, stats)
    }

    fn search_top_k_with_shards(&self, query: &Graph, k: usize, shards: usize) -> TopKOutcome {
        let _span = gbd_telemetry::Span::enter("engine.search_top_k");
        let started = Instant::now();
        if k == 0 {
            return TopKOutcome::default();
        }
        let flatten_started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = self.database.catalog().flatten_lookup(&query_branches);
        let kernel = self.kernel(query.vertex_count(), &query_flat);
        // With `k ≥ |D|` no heap can ever fill, so no bound will ever be
        // consulted and the tables are not built at all.
        let cutoff = TighteningRank::prepare(&kernel, k, self.database.len(), |extended_size| {
            self.rank_decision(extended_size)
        });
        let flatten_seconds = flatten_started.elapsed().as_secs_f64();

        let n = self.database.len();
        let shards = shards.max(1).min(n.max(1));
        let scan_started = Instant::now();
        // Each shard walks its range in ascending index order with a local
        // bounded heap — the heap's strict admission bound is only sound
        // because a later candidate always loses posterior ties against
        // earlier (smaller-index) kept hits.
        let results = scan_shards(n, shards, |range| {
            let mut sink = TopKSink::new(k);
            let mut stats = SearchStats::default();
            let mut local: HashMap<(usize, u64), f64> = HashMap::new();
            kernel.scan(
                range,
                &cutoff,
                &mut sink,
                &mut stats,
                |_| false,
                |i| i,
                |stats, extended_size, phi| {
                    lookup_posterior_memoized(
                        &self.cache,
                        self.index,
                        &mut local,
                        stats,
                        extended_size,
                        phi,
                    )
                },
            );
            (sink.into_sorted_hits(), stats)
        });
        let mut totals = SearchStats::default();
        let mut shard_hits = Vec::with_capacity(results.len());
        for (hits, stats) in results {
            shard_hits.push(hits);
            totals.absorb(&stats);
        }
        let hits = merge_ranked(shard_hits, k);
        totals.shards = shards;
        totals.flatten_seconds = flatten_seconds;
        totals.scan_seconds = scan_started.elapsed().as_secs_f64();
        if !self.config.force_fixed_pipeline {
            Planner::book(kernel.plan(), &mut totals);
            self.planner.observe(&totals);
        }
        let seconds = started.elapsed().as_secs_f64();
        crate::obs::record_search(&totals, seconds);

        TopKOutcome {
            hits,
            seconds,
            stats: totals,
        }
    }

    /// The sort-truncate reference for ranked queries: a threshold-free full
    /// scan (one flat merge and one memoized posterior per database graph),
    /// sorted under [`crate::topk::rank_order`], truncated to `k`.
    /// [`Self::search_top_k`] is proven bit-identical to this path by the
    /// workspace proptests; kept public as the equivalence baseline for
    /// tests and `bench_topk --check`.
    pub fn top_k_reference(&self, query: &Graph, k: usize) -> Vec<RankedHit> {
        let query_branches = BranchMultiset::from_graph(query);
        let query_flat = self.database.catalog().flatten_lookup(&query_branches);
        let query_size = query.vertex_count();
        let mut local: HashMap<(usize, u64), f64> = HashMap::new();
        let mut stats = SearchStats::default();
        let posteriors: Vec<f64> = (0..self.database.len())
            .map(|i| {
                let phi = self.observed_phi_flat(&query_flat, i);
                let extended_size = self.extended_size_for(query_size, self.database.size_of(i));
                lookup_posterior_memoized(
                    &self.cache,
                    self.index,
                    &mut local,
                    &mut stats,
                    extended_size,
                    phi,
                )
            })
            .collect();
        rank_by_posterior(&posteriors, k)
    }

    /// The seed-faithful sequential scan: branch-multiset merges and a fresh
    /// posterior evaluation per database graph, no memoization, no flat
    /// storage, no sharding. Kept as the equivalence baseline for tests and
    /// the `online_syn` benchmark.
    pub fn reference_search(&self, query: &Graph) -> SearchOutcome {
        let started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let mut matches = Vec::new();
        let mut posteriors = Vec::with_capacity(self.database.len());
        for i in 0..self.database.len() {
            let phi = match self.config.variant {
                GbdaVariant::WeightedGbd { weight } => {
                    let value = query_branches.weighted_gbd(self.database.branches(i), weight);
                    value.round().max(0.0) as u64
                }
                _ => self.database.gbd_to(&query_branches, i) as u64,
            };
            let extended_size = self.extended_size(query, i);
            let lambda1 = self.index.lambda1_table(extended_size);
            let ged_prior = self.index.ged_prior().column(extended_size);
            let gbd_prior = self.index.gbd_prior().probability(phi as usize);
            let posterior =
                posterior_ged_at_most(self.config.tau_hat, phi, &lambda1, &ged_prior, gbd_prior);
            posteriors.push(posterior);
            if posterior >= self.config.gamma {
                matches.push(i);
            }
        }
        SearchOutcome {
            matches,
            posteriors,
            seconds: started.elapsed().as_secs_f64(),
            stats: SearchStats {
                shards: 1,
                evaluated: self.database.len(),
                cache_misses: self.database.len(),
                merged: self.database.len(),
                ..SearchStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::known_ged::ModificationMode;
    use gbd_graph::{GeneratorConfig, KnownGedConfig, KnownGedFamily, LabelAlphabets};

    fn family_setup(tau_hat: u64) -> (KnownGedFamily, GraphDatabase, GbdaConfig) {
        let mut rng = StdRng::seed_from_u64(40);
        let base = GeneratorConfig::new(20, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        let cfg = KnownGedConfig::new(base, 10, 30, 10).with_mode(ModificationMode::RelabelEdges);
        let family = KnownGedFamily::generate(&cfg, &mut rng).unwrap();
        let graphs: Vec<_> = family.members().iter().map(|m| m.graph().clone()).collect();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(tau_hat, 0.5).with_sample_pairs(400);
        (family, database, config)
    }

    fn outcomes_identical(a: &SearchOutcome, b: &SearchOutcome) {
        assert_eq!(a.matches, b.matches);
        assert_eq!(a.posteriors.len(), b.posteriors.len());
        for (x, y) in a.posteriors.iter().zip(&b.posteriors) {
            assert_eq!(x.to_bits(), y.to_bits(), "posteriors diverge");
        }
    }

    #[test]
    fn engine_matches_the_seed_reference_path() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config);
        for q in 0..3 {
            let query = family.member_graph(q).clone();
            outcomes_identical(&engine.search(&query), &engine.reference_search(&query));
        }
    }

    #[test]
    fn sharded_scan_equals_sequential_scan() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let sequential = QueryEngine::new(&database, &index, config.clone());
        let sharded = QueryEngine::new(&database, &index, config.with_shards(4));
        let query = family.member_graph(0).clone();
        let a = sequential.search(&query);
        let b = sharded.search(&query);
        outcomes_identical(&a, &b);
        assert_eq!(b.stats.shards, 4);
        assert_eq!(b.stats.evaluated, database.len());
    }

    #[test]
    fn shards_never_exceed_the_database_size() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config.with_shards(10_000));
        let outcome = engine.search(family.member_graph(0));
        assert!(outcome.stats.shards <= database.len());
    }

    #[test]
    fn batch_search_keeps_order_and_equals_per_query_search() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config.with_shards(3));
        let queries: Vec<Graph> = (0..5).map(|i| family.member_graph(i).clone()).collect();
        let batch = engine.search_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (query, outcome) in queries.iter().zip(&batch) {
            outcomes_identical(outcome, &engine.search(query));
        }
    }

    #[test]
    fn memoization_collapses_the_scan_to_few_evaluations() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config);
        let query = family.member_graph(0).clone();
        let first = engine.search(&query);
        // Misses are bounded by |sizes| × (ϕ_max + 1), not by |D|.
        let bound =
            database.distinct_sizes().len() * (database.max_vertices() + query.vertex_count() + 1);
        assert!(first.stats.cache_misses <= bound);
        // A repeat scan is answered entirely from the memo.
        let second = engine.search(&query);
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, database.len());
        outcomes_identical(&first, &second);
    }

    #[test]
    fn threshold_fast_path_returns_identical_matches() {
        let (family, database, config) = family_setup(5);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let recording = QueryEngine::new(&database, &index, config.clone());
        let fast = QueryEngine::new(&database, &index, config.with_record_posteriors(false));
        for q in 0..4 {
            let query = family.member_graph(q).clone();
            let a = recording.search(&query);
            let b = fast.search(&query);
            assert_eq!(a.matches, b.matches, "fast path diverges on query {q}");
            assert!(b.posteriors.is_empty());
        }
        // The fast path actually exercises the integer comparison.
        let outcome = fast.search(family.member_graph(0));
        assert!(outcome.stats.threshold_accepts > 0);
    }

    #[test]
    fn phi_threshold_is_the_largest_accepting_prefix() {
        let (_, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let gamma = config.gamma;
        let engine = QueryEngine::new(&database, &index, config);
        let size = database.max_vertices();
        match engine.phi_threshold(size) {
            Some(t) => {
                for phi in 0..=t {
                    assert!(engine.posterior_value(size, phi) >= gamma);
                }
                assert!(engine.posterior_value(size, t + 1) < gamma);
            }
            None => assert!(engine.posterior_value(size, 0) < gamma),
        }
    }

    /// A workload whose vertex counts are spread far enough apart that the
    /// L1 size bound genuinely rejects whole buckets.
    fn spread_setup(tau_hat: u64) -> (Vec<Graph>, GraphDatabase, GbdaConfig) {
        let mut rng = StdRng::seed_from_u64(91);
        let mut graphs = Vec::new();
        for size in [8usize, 16, 24, 32] {
            let cfg = GeneratorConfig::new(size, 2.2).with_alphabets(LabelAlphabets::new(6, 3));
            graphs.extend(cfg.generate_many(10, &mut rng).unwrap());
        }
        let queries: Vec<Graph> = (0..4).map(|i| graphs[i * 11].clone()).collect();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(tau_hat, 0.8).with_sample_pairs(300);
        (queries, database, config)
    }

    #[test]
    fn cascade_scan_is_bit_identical_to_the_merge_scan() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        for record in [true, false] {
            let with = QueryEngine::new(
                &database,
                &index,
                config.clone().with_record_posteriors(record),
            );
            let without = QueryEngine::new(
                &database,
                &index,
                config
                    .clone()
                    .with_record_posteriors(record)
                    .with_filter_cascade(false),
            );
            for (qi, query) in queries.iter().enumerate() {
                let a = with.search(query);
                let b = without.search(query);
                assert_eq!(a.matches, b.matches, "record={record}, query {qi}");
                for (x, y) in a.posteriors.iter().zip(&b.posteriors) {
                    assert_eq!(x.to_bits(), y.to_bits(), "record={record}, query {qi}");
                }
            }
        }
    }

    #[test]
    fn cascade_stages_account_for_every_graph_and_skip_all_merges() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let fast = QueryEngine::new(&database, &index, config.with_record_posteriors(false));
        let mut bound_rejections = 0;
        for query in &queries {
            let stats = fast.search(query).stats;
            assert_eq!(
                stats.bound_rejected
                    + stats.bound_accepted
                    + stats.postings_resolved
                    + stats.merged,
                stats.evaluated,
                "stage counters must partition the scan"
            );
            assert_eq!(stats.evaluated, database.len());
            assert_eq!(stats.merged, 0, "the cascade never merges");
            assert_eq!(stats.skipped_merges(), database.len());
            bound_rejections += stats.bound_rejected;
        }
        assert!(
            bound_rejections > 0,
            "spread sizes must trigger L1 bound rejections"
        );
    }

    #[test]
    fn disabled_cascade_merges_every_graph() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config.with_filter_cascade(false));
        let stats = engine.search(&queries[0]).stats;
        assert_eq!(stats.merged, database.len());
        assert_eq!(stats.skipped_merges(), 0);
    }

    #[test]
    fn size_decisions_agree_with_the_memoized_posterior() {
        let (_, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let gamma = config.gamma;
        let engine = QueryEngine::new(&database, &index, config);
        for &size in database.distinct_sizes() {
            let decision = engine.size_decision(size);
            assert_eq!(decision.cap, database.max_vertices() as u64);
            for phi in 0..=decision.cap {
                let accepted = engine.posterior_value(size, phi) >= gamma;
                if decision.accepts(phi) {
                    assert!(accepted, "accepting prefix lies at size {size}, ϕ {phi}");
                }
                if decision.rejects(phi) {
                    assert!(!accepted, "rejecting suffix lies at size {size}, ϕ {phi}");
                }
            }
            assert_eq!(engine.phi_threshold(size), decision.accept_max);
        }
    }

    #[test]
    fn batch_stats_aggregate_the_filter_counters() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(
            &database,
            &index,
            config.with_record_posteriors(false).with_shards(3),
        );
        let (outcomes, stats) = engine.search_batch_with_stats(&queries);
        assert_eq!(outcomes.len(), queries.len());
        assert_eq!(stats.evaluated, database.len() * queries.len());
        assert_eq!(stats.shards, 3, "batch stats report the worker count");
        let per_query: usize = outcomes.iter().map(|o| o.stats.bound_rejected).sum();
        assert_eq!(stats.bound_rejected, per_query);
        assert_eq!(
            stats.skipped_merges() + stats.merged,
            database.len() * queries.len()
        );
        for (query, outcome) in queries.iter().zip(&outcomes) {
            outcomes_identical(outcome, &engine.search(query));
        }
    }

    fn hits_identical(a: &[RankedHit], b: &[RankedHit]) {
        assert_eq!(a.len(), b.len(), "ranked result lengths diverge");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id, "ranked ids diverge");
            assert_eq!(
                x.posterior.to_bits(),
                y.posterior.to_bits(),
                "ranked posteriors diverge"
            );
        }
    }

    #[test]
    fn top_k_equals_the_sort_truncate_reference() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        for cascade in [true, false] {
            let engine = QueryEngine::new(
                &database,
                &index,
                config.clone().with_filter_cascade(cascade),
            );
            for (qi, query) in queries.iter().enumerate() {
                for k in [1usize, 5, database.len(), database.len() + 7] {
                    let top = engine.search_top_k(query, k);
                    let reference = engine.top_k_reference(query, k);
                    hits_identical(&top.hits, &reference);
                    assert_eq!(
                        top.hits.len(),
                        k.min(database.len()),
                        "cascade={cascade} q={qi}"
                    );
                    assert_eq!(top.stats.evaluated, database.len());
                }
            }
        }
    }

    #[test]
    fn sharded_top_k_equals_sequential_top_k() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let sequential = QueryEngine::new(&database, &index, config.clone());
        for shards in [2usize, 4, 7] {
            let sharded = QueryEngine::new(&database, &index, config.clone().with_shards(shards));
            for query in &queries {
                for k in [1usize, 6, database.len()] {
                    let a = sequential.search_top_k(query, k);
                    let b = sharded.search_top_k(query, k);
                    hits_identical(&a.hits, &b.hits);
                    assert_eq!(b.stats.shards, shards);
                    assert_eq!(b.stats.evaluated, database.len());
                }
            }
        }
    }

    #[test]
    fn top_k_batch_keeps_order_and_equals_per_query() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config.with_shards(3));
        let (batch, stats) = engine.search_top_k_batch_with_stats(&queries, 5);
        assert_eq!(batch.len(), queries.len());
        assert_eq!(stats.evaluated, database.len() * queries.len());
        assert_eq!(stats.shards, 3, "batch stats report the worker count");
        for (query, outcome) in queries.iter().zip(&batch) {
            hits_identical(&outcome.hits, &engine.search_top_k(query, 5).hits);
        }
    }

    #[test]
    fn rank_bound_tightens_and_rejects_on_spread_sizes() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config);
        let mut rank_rejections = 0;
        for query in &queries {
            let stats = engine.search_top_k(query, 1).stats;
            assert_eq!(
                stats.rank_rejected + stats.postings_resolved + stats.merged,
                stats.evaluated,
                "ranked stage counters must partition the scan"
            );
            assert_eq!(stats.merged, 0, "the ranked cascade never merges");
            assert!(stats.heap_inserts >= 1);
            rank_rejections += stats.rank_rejected;
        }
        assert!(
            rank_rejections > 0,
            "spread sizes must trigger rank-bound rejections at k = 1"
        );
        // Without the cascade every graph is merged and none is rejected.
        let merge_engine = QueryEngine::new(
            &database,
            &index,
            engine.config().clone().with_filter_cascade(false),
        );
        let stats = merge_engine.search_top_k(&queries[0], 1).stats;
        assert_eq!(stats.merged, database.len());
        assert_eq!(stats.rank_rejected, 0);
    }

    #[test]
    fn top_k_ignores_gamma_and_recording() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let strict = QueryEngine::new(
            &database,
            &index,
            GbdaConfig {
                gamma: 0.9999,
                ..config.clone()
            },
        );
        let loose = QueryEngine::new(
            &database,
            &index,
            GbdaConfig {
                gamma: 0.0,
                ..config.clone()
            }
            .with_record_posteriors(false),
        );
        for query in &queries {
            hits_identical(
                &strict.search_top_k(query, 7).hits,
                &loose.search_top_k(query, 7).hits,
            );
        }
    }

    #[test]
    fn top_k_edge_cases_are_well_defined() {
        let (queries, database, config) = spread_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let engine = QueryEngine::new(&database, &index, config.clone());
        let zero = engine.search_top_k(&queries[0], 0);
        assert!(zero.hits.is_empty());
        assert_eq!(zero.stats.evaluated, 0, "k = 0 returns without scanning");
        let all = engine.search_top_k(&queries[0], database.len() + 100);
        assert_eq!(all.hits.len(), database.len());
        for pair in all.hits.windows(2) {
            assert!(
                crate::topk::rank_order(&pair[0], &pair[1]) != std::cmp::Ordering::Greater,
                "hits must be sorted best-first"
            );
        }
        // An empty database ranks to nothing.
        let empty = GraphDatabase::from_graphs(Vec::new());
        let empty_engine = QueryEngine::new(&empty, &index, config);
        assert!(empty_engine.search_top_k(&queries[0], 3).hits.is_empty());
    }

    #[test]
    fn top_k_is_consistent_across_variants() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let variants = [
            GbdaVariant::Standard,
            GbdaVariant::AverageExtendedSize { sample_graphs: 5 },
            GbdaVariant::WeightedGbd { weight: 0.4 },
            GbdaVariant::WeightedGbd { weight: -0.3 },
        ];
        for variant in variants {
            let engine = QueryEngine::new(&database, &index, config.clone().with_variant(variant));
            let query = family.member_graph(0).clone();
            let top = engine.search_top_k(&query, 5);
            hits_identical(&top.hits, &engine.top_k_reference(&query, 5));
        }
    }

    #[test]
    fn variant_v1_uses_a_fixed_extended_size() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let v1 = config
            .clone()
            .with_variant(GbdaVariant::AverageExtendedSize { sample_graphs: 5 });
        let engine = QueryEngine::new(&database, &index, v1);
        assert!(engine.fixed_extended_size().is_some());
        let outcome = engine.search(family.member_graph(1));
        assert_eq!(outcome.posteriors.len(), database.len());
        outcomes_identical(&outcome, &engine.reference_search(family.member_graph(1)));
    }

    #[test]
    fn variant_v2_changes_the_observed_distance() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let standard = QueryEngine::new(&database, &index, config.clone());
        let v2 = QueryEngine::new(
            &database,
            &index,
            config.with_variant(GbdaVariant::WeightedGbd { weight: 0.1 }),
        );
        let query = family.member_graph(0).clone();
        let branches = BranchMultiset::from_graph(&query);
        // With w = 0.1 the intersection barely counts, so the observed ϕ is
        // larger than the true GBD for the identical graph.
        assert!(v2.observed_phi(&branches, 0) > standard.observed_phi(&branches, 0));
        outcomes_identical(&v2.search(&query), &v2.reference_search(&query));
    }
}
