//! The online querying stage — Algorithm 1 (GBDA).
//!
//! For each database graph `G`:
//!
//! 1. compute `GBD(Q, G)` from the pre-computed flat branch runs (`O(nd)`),
//! 2. evaluate `Φ = Pr[GED(Q, G) ≤ τ̂ | GBD(Q, G) = ϕ]
//!    = Σ_τ Λ1(Q', G'; τ, ϕ) · Λ3(τ) / Λ2(ϕ)` — memoized per
//!    `(|V'1|, ϕ)` by the engine's [`crate::PosteriorCache`],
//! 3. report `G` when `Φ ≥ γ`.
//!
//! [`GbdaSearcher`] is the stable single-query facade over
//! [`crate::QueryEngine`], which adds batch execution and sharded scans. The
//! two ablation variants of Section VII-D (GBDA-V1 and GBDA-V2) are handled
//! by the engine by swapping the extended size or the branch distance fed
//! into the model.

use gbd_graph::{BranchMultiset, Graph};

use crate::config::GbdaConfig;
use crate::database::GraphDatabase;
use crate::engine::QueryEngine;
use crate::offline::OfflineIndex;

/// Per-stage execution statistics of one search.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SearchStats {
    /// Number of database shards the scan actually used.
    pub shards: usize,
    /// Seconds spent extracting and flattening the query's branches.
    pub flatten_seconds: f64,
    /// Seconds spent scanning the database (all shards, wall clock).
    pub scan_seconds: f64,
    /// Posterior lookups answered from the memo.
    pub cache_hits: usize,
    /// Posterior lookups that required a genuine evaluation.
    pub cache_misses: usize,
    /// Graphs accepted by the per-size ϕ-threshold integer comparison alone
    /// (only exercised when posterior recording is off).
    pub threshold_accepts: usize,
    /// Database graphs scanned.
    pub evaluated: usize,
    /// Graphs rejected by a cascade bound stage alone — no ϕ was computed
    /// for them at all (only exercised when posterior recording is off and
    /// [`GbdaConfig::filter_cascade`] is on).
    pub bound_rejected: usize,
    /// Graphs accepted by a cascade bound stage alone — the upper bound on ϕ
    /// already fell inside the accepting prefix.
    pub bound_accepted: usize,
    /// Graphs whose exact ϕ came from the inverted-index count filter
    /// instead of a branch-run merge.
    pub postings_resolved: usize,
    /// Graphs that fell through to the exact flat branch-run merge (every
    /// graph when the cascade is off; none when it is on).
    pub merged: usize,
    /// Ranked scans only: graphs rejected by the tightening rank bound alone
    /// — their ϕ lower bound proved they cannot beat the running k-th-best
    /// posterior, so neither ϕ nor a posterior was resolved for them.
    pub rank_rejected: usize,
    /// Ranked scans only: candidates admitted into a top-k heap (evicted
    /// ones included).
    pub heap_inserts: usize,
    /// Graphs decided specifically by the stage-2 distinct-run refinement —
    /// a subset of `bound_rejected`/`rank_rejected` that stage 1 left
    /// undecided. This is the marginal stage-2 selectivity the
    /// [`planner`](crate::filter::planner) cost model consumes.
    pub stage2_decided: usize,
    /// Segment scans whose stage order was chosen by the per-query planner
    /// (zero under [`GbdaConfig::force_fixed_pipeline`]).
    pub planned_scans: usize,
    /// Planned scans that skipped the bound stages entirely (tiny candidate
    /// sets go straight to exact resolution).
    pub plan_skipped_bounds: usize,
    /// Planned scans that ran stage 1 but skipped the stage-2 refinement
    /// (its observed marginal selectivity did not pay for the sweep).
    pub plan_skipped_stage2: usize,
    /// Planned scans that accumulated the stage-3 postings eagerly per chunk
    /// (postings-first) instead of only for chunks the bounds left
    /// undecided (bound-first).
    pub plan_postings_first: usize,
}

impl SearchStats {
    /// Database graphs resolved without a flat branch-run merge.
    pub fn skipped_merges(&self) -> usize {
        self.bound_rejected + self.bound_accepted + self.postings_resolved + self.rank_rejected
    }

    /// The full stage partition of a scan: every evaluated graph is decided
    /// by exactly one cascade stage or merged, so this always equals
    /// [`Self::evaluated`](SearchStats::evaluated) — on threshold, ranked,
    /// batch and dynamic scans alike (see [`crate::kernel`]).
    pub fn stage_partition(&self) -> usize {
        self.bound_rejected
            + self.bound_accepted
            + self.rank_rejected
            + self.postings_resolved
            + self.merged
    }

    /// Sums another search's counters and timings into this one (used to
    /// aggregate batch statistics). Field semantics under absorption:
    ///
    /// * **summed** — every pruning/cache/planner counter
    ///   (`cache_hits` … `plan_postings_first`) *and* both timings:
    ///   `flatten_seconds` and `scan_seconds` become total work across the
    ///   absorbed searches, not wall clock;
    /// * **max'd** — `shards` keeps the maximum observed (absorbing
    ///   per-shard or per-query stats must not sum thread counts).
    ///
    /// Absorption deliberately collapses the per-query latency
    /// distribution into totals. The per-query resolution survives in the
    /// workspace telemetry histograms (`gbda_query_seconds`,
    /// `gbda_flatten_seconds`, `gbda_scan_seconds` in the `gbd-telemetry`
    /// crate), which every search — batch items included — feeds before
    /// its stats are absorbed.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.shards = self.shards.max(other.shards);
        self.flatten_seconds += other.flatten_seconds;
        self.scan_seconds += other.scan_seconds;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.threshold_accepts += other.threshold_accepts;
        self.evaluated += other.evaluated;
        self.bound_rejected += other.bound_rejected;
        self.bound_accepted += other.bound_accepted;
        self.postings_resolved += other.postings_resolved;
        self.merged += other.merged;
        self.rank_rejected += other.rank_rejected;
        self.heap_inserts += other.heap_inserts;
        self.stage2_decided += other.stage2_decided;
        self.planned_scans += other.planned_scans;
        self.plan_skipped_bounds += other.plan_skipped_bounds;
        self.plan_skipped_stage2 += other.plan_skipped_stage2;
        self.plan_postings_first += other.plan_postings_first;
    }
}

/// Result of one similarity search.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// Indices of database graphs with `Φ ≥ γ`.
    pub matches: Vec<usize>,
    /// The posterior `Φ` for every database graph (same indexing as the
    /// database), useful for diagnostics and the experiment harness. Empty
    /// when [`GbdaConfig::record_posteriors`] is off.
    pub posteriors: Vec<f64>,
    /// Wall-clock seconds of the online stage for this query.
    pub seconds: f64,
    /// Per-stage timing and pruning statistics.
    pub stats: SearchStats,
}

/// The GBDA searcher: the stable single-query interface over
/// [`QueryEngine`].
pub struct GbdaSearcher<'a> {
    engine: QueryEngine<'a>,
}

impl<'a> GbdaSearcher<'a> {
    /// Creates a searcher. For the GBDA-V1 variant the average extended size
    /// is sampled here, once, exactly as the paper describes.
    pub fn new(database: &'a GraphDatabase, index: &'a OfflineIndex, config: GbdaConfig) -> Self {
        GbdaSearcher {
            engine: QueryEngine::new(database, index, config),
        }
    }

    /// The configuration this searcher runs with.
    pub fn config(&self) -> &GbdaConfig {
        self.engine.config()
    }

    /// The underlying query engine (batch execution, sharded scans, memo
    /// statistics).
    pub fn engine(&self) -> &QueryEngine<'a> {
        &self.engine
    }

    /// The posterior `Φ = Pr[GED(Q, G_i) ≤ τ̂ | GBD]` for one database graph.
    pub fn posterior(
        &self,
        query: &Graph,
        query_branches: &BranchMultiset,
        graph_index: usize,
    ) -> f64 {
        let phi = self.engine.observed_phi(query_branches, graph_index);
        let extended_size = match self.engine.fixed_extended_size() {
            Some(v) => v,
            None => query
                .vertex_count()
                .max(self.engine.database().graph(graph_index).vertex_count())
                .max(1),
        };
        self.engine.posterior_value(extended_size, phi)
    }

    /// Runs Algorithm 1 for one query graph.
    pub fn search(&self, query: &Graph) -> SearchOutcome {
        self.engine.search(query)
    }

    /// Runs a batch of queries (see [`QueryEngine::search_batch`]).
    pub fn search_batch(&self, queries: &[Graph]) -> Vec<SearchOutcome> {
        self.engine.search_batch(queries)
    }

    /// Runs a ranked query: the `k` database graphs with the highest
    /// posterior, best first (see [`QueryEngine::search_top_k`] for the
    /// determinism guarantee).
    pub fn search_top_k(&self, query: &Graph, k: usize) -> crate::topk::TopKOutcome {
        self.engine.search_top_k(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GbdaVariant;
    use gbd_graph::known_ged::ModificationMode;
    use gbd_graph::{GeneratorConfig, KnownGedConfig, KnownGedFamily, LabelAlphabets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a database from one known-GED family: the query is member 0 and
    /// the ground-truth GED of every member is known.
    fn family_setup(tau_hat: u64) -> (KnownGedFamily, GraphDatabase, GbdaConfig) {
        let mut rng = StdRng::seed_from_u64(40);
        let base = GeneratorConfig::new(20, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        let cfg = KnownGedConfig::new(base, 10, 30, 10).with_mode(ModificationMode::RelabelEdges);
        let family = KnownGedFamily::generate(&cfg, &mut rng).unwrap();
        let graphs: Vec<_> = family.members().iter().map(|m| m.graph().clone()).collect();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(tau_hat, 0.5).with_sample_pairs(400);
        (family, database, config)
    }

    #[test]
    fn identical_graph_is_always_returned() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let searcher = GbdaSearcher::new(&database, &index, config);
        let query = family.member_graph(0).clone();
        let outcome = searcher.search(&query);
        assert!(
            outcome.matches.contains(&0),
            "the query itself (GED 0) must be in the result: posteriors {:?}",
            &outcome.posteriors[..5]
        );
        assert_eq!(outcome.posteriors.len(), database.len());
        assert!(outcome.seconds >= 0.0);
        assert_eq!(outcome.stats.evaluated, database.len());
        assert_eq!(outcome.stats.shards, 1);
    }

    #[test]
    fn posteriors_decrease_with_distance_on_average() {
        let (family, database, config) = family_setup(5);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let searcher = GbdaSearcher::new(&database, &index, config);
        let query = family.member_graph(0).clone();
        let outcome = searcher.search(&query);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for i in 0..database.len() {
            let d = family.known_ged(0, i);
            if d <= 2 {
                near.push(outcome.posteriors[i]);
            } else if d >= 8 {
                far.push(outcome.posteriors[i]);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            avg(&near) > avg(&far),
            "near avg {} should exceed far avg {}",
            avg(&near),
            avg(&far)
        );
    }

    #[test]
    fn search_is_reasonably_effective_on_a_known_family() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let searcher = GbdaSearcher::new(&database, &index, config.clone());
        let query = family.member_graph(0).clone();
        let outcome = searcher.search(&query);
        let positives: Vec<usize> = (0..database.len())
            .filter(|&i| family.known_ged(0, i) <= config.tau_hat as usize)
            .collect();
        let confusion = crate::effectiveness::Confusion::from_sets(&outcome.matches, &positives);
        assert!(
            confusion.f1() > 0.5,
            "GBDA should be reasonably effective on an easy family, F1 = {} (returned {}, expected {})",
            confusion.f1(),
            outcome.matches.len(),
            positives.len()
        );
    }

    #[test]
    fn posterior_accessor_matches_search_results() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let searcher = GbdaSearcher::new(&database, &index, config);
        let query = family.member_graph(0).clone();
        let branches = BranchMultiset::from_graph(&query);
        let outcome = searcher.search(&query);
        for i in 0..database.len() {
            assert_eq!(
                searcher.posterior(&query, &branches, i).to_bits(),
                outcome.posteriors[i].to_bits()
            );
        }
    }

    #[test]
    fn variant_v1_uses_a_fixed_extended_size() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let v1 = config
            .clone()
            .with_variant(GbdaVariant::AverageExtendedSize { sample_graphs: 5 });
        let searcher = GbdaSearcher::new(&database, &index, v1);
        assert!(searcher.engine().fixed_extended_size().is_some());
        let query = family.member_graph(1).clone();
        let outcome = searcher.search(&query);
        assert_eq!(outcome.posteriors.len(), database.len());
    }

    #[test]
    fn variant_v2_changes_the_observed_distance() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let standard = GbdaSearcher::new(&database, &index, config.clone());
        let v2 = GbdaSearcher::new(
            &database,
            &index,
            config.with_variant(GbdaVariant::WeightedGbd { weight: 0.1 }),
        );
        let query = family.member_graph(0).clone();
        let branches = BranchMultiset::from_graph(&query);
        // With w = 0.1 the intersection barely counts, so the observed ϕ is
        // larger than the true GBD for the identical graph.
        assert!(
            v2.engine().observed_phi(&branches, 0) > standard.engine().observed_phi(&branches, 0)
        );
    }

    #[test]
    fn gamma_one_returns_a_subset_of_gamma_half() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config).unwrap();
        let loose = GbdaSearcher::new(
            &database,
            &index,
            GbdaConfig {
                gamma: 0.5,
                ..config.clone()
            },
        );
        let strict = GbdaSearcher::new(
            &database,
            &index,
            GbdaConfig {
                gamma: 0.99,
                ..config
            },
        );
        let query = family.member_graph(0).clone();
        let loose_matches = loose.search(&query).matches;
        let strict_matches = strict.search(&query).matches;
        assert!(strict_matches.iter().all(|m| loose_matches.contains(m)));
    }
}
