//! The online querying stage — Algorithm 1 (GBDA).
//!
//! For each database graph `G`:
//!
//! 1. compute `GBD(Q, G)` from the pre-computed branch multisets (`O(nd)`),
//! 2. evaluate `Φ = Pr[GED(Q, G) ≤ τ̂ | GBD(Q, G) = ϕ]
//!    = Σ_τ Λ1(Q', G'; τ, ϕ) · Λ3(τ) / Λ2(ϕ)` (`O(τ̂³)` shared per extended
//!    size, `O(τ̂)` lookups per graph),
//! 3. report `G` when `Φ ≥ γ`.
//!
//! The searcher also implements the two ablation variants of Section VII-D
//! (GBDA-V1 and GBDA-V2) by swapping the extended size or the branch
//! distance fed into the model.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gbd_graph::{BranchMultiset, Graph};
use gbd_prob::posterior_ged_at_most;

use crate::config::{GbdaConfig, GbdaVariant};
use crate::database::GraphDatabase;
use crate::offline::OfflineIndex;

/// Result of one similarity search.
#[derive(Debug, Clone, Default)]
pub struct SearchOutcome {
    /// Indices of database graphs with `Φ ≥ γ`.
    pub matches: Vec<usize>,
    /// The posterior `Φ` for every database graph (same indexing as the
    /// database), useful for diagnostics and the experiment harness.
    pub posteriors: Vec<f64>,
    /// Wall-clock seconds of the online stage for this query.
    pub seconds: f64,
}

/// The GBDA searcher: database + offline index + configuration.
pub struct GbdaSearcher<'a> {
    database: &'a GraphDatabase,
    index: &'a OfflineIndex,
    config: GbdaConfig,
    /// `|V'1|` override used by the GBDA-V1 variant.
    fixed_extended_size: Option<usize>,
}

impl<'a> GbdaSearcher<'a> {
    /// Creates a searcher. For the GBDA-V1 variant the average extended size
    /// is sampled here, once, exactly as the paper describes.
    pub fn new(database: &'a GraphDatabase, index: &'a OfflineIndex, config: GbdaConfig) -> Self {
        let fixed_extended_size = match config.variant {
            GbdaVariant::AverageExtendedSize { sample_graphs } => {
                let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA1FA);
                let mut indices: Vec<usize> = (0..database.len()).collect();
                indices.shuffle(&mut rng);
                let sample: Vec<usize> = indices.into_iter().take(sample_graphs.max(1)).collect();
                let avg = sample
                    .iter()
                    .map(|&i| database.graph(i).vertex_count())
                    .sum::<usize>() as f64
                    / sample.len() as f64;
                Some(avg.round().max(1.0) as usize)
            }
            _ => None,
        };
        GbdaSearcher {
            database,
            index,
            config,
            fixed_extended_size,
        }
    }

    /// The configuration this searcher runs with.
    pub fn config(&self) -> &GbdaConfig {
        &self.config
    }

    /// The branch distance fed into the model for one pair, honouring the
    /// GBDA-V2 variant (Equation 26). The value is rounded to the nearest
    /// integer ϕ because the model is defined over integer branch distances.
    fn observed_phi(&self, query: &BranchMultiset, graph_index: usize) -> u64 {
        match self.config.variant {
            GbdaVariant::WeightedGbd { weight } => {
                let value = query.weighted_gbd(self.database.branches(graph_index), weight);
                value.round().max(0.0) as u64
            }
            _ => self.database.gbd_to(query, graph_index) as u64,
        }
    }

    /// The extended size `|V'1|` used for one pair, honouring GBDA-V1.
    fn extended_size(&self, query: &Graph, graph_index: usize) -> usize {
        match self.fixed_extended_size {
            Some(v) => v,
            None => query
                .vertex_count()
                .max(self.database.graph(graph_index).vertex_count())
                .max(1),
        }
    }

    /// The posterior `Φ = Pr[GED(Q, G_i) ≤ τ̂ | GBD]` for one database graph.
    pub fn posterior(
        &self,
        query: &Graph,
        query_branches: &BranchMultiset,
        graph_index: usize,
    ) -> f64 {
        let phi = self.observed_phi(query_branches, graph_index);
        let extended_size = self.extended_size(query, graph_index);
        let lambda1 = self.index.lambda1_table(extended_size);
        let ged_prior = self.index.ged_prior().column(extended_size);
        let gbd_prior = self.index.gbd_prior().probability(phi as usize);
        posterior_ged_at_most(self.config.tau_hat, phi, &lambda1, &ged_prior, gbd_prior)
    }

    /// Runs Algorithm 1 for one query graph.
    pub fn search(&self, query: &Graph) -> SearchOutcome {
        let started = Instant::now();
        let query_branches = BranchMultiset::from_graph(query);
        let mut matches = Vec::new();
        let mut posteriors = Vec::with_capacity(self.database.len());
        for i in 0..self.database.len() {
            let phi = self.posterior(query, &query_branches, i);
            posteriors.push(phi);
            if phi >= self.config.gamma {
                matches.push(i);
            }
        }
        SearchOutcome {
            matches,
            posteriors,
            seconds: started.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::known_ged::ModificationMode;
    use gbd_graph::{GeneratorConfig, KnownGedConfig, KnownGedFamily, LabelAlphabets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a database from one known-GED family: the query is member 0 and
    /// the ground-truth GED of every member is known.
    fn family_setup(tau_hat: u64) -> (KnownGedFamily, GraphDatabase, GbdaConfig) {
        let mut rng = StdRng::seed_from_u64(40);
        let base = GeneratorConfig::new(20, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        let cfg = KnownGedConfig::new(base, 10, 30, 10).with_mode(ModificationMode::RelabelEdges);
        let family = KnownGedFamily::generate(&cfg, &mut rng).unwrap();
        let graphs: Vec<_> = family.members().iter().map(|m| m.graph().clone()).collect();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(tau_hat, 0.5).with_sample_pairs(400);
        (family, database, config)
    }

    #[test]
    fn identical_graph_is_always_returned() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config);
        let searcher = GbdaSearcher::new(&database, &index, config);
        let query = family.member_graph(0).clone();
        let outcome = searcher.search(&query);
        assert!(
            outcome.matches.contains(&0),
            "the query itself (GED 0) must be in the result: posteriors {:?}",
            &outcome.posteriors[..5]
        );
        assert_eq!(outcome.posteriors.len(), database.len());
        assert!(outcome.seconds >= 0.0);
    }

    #[test]
    fn posteriors_decrease_with_distance_on_average() {
        let (family, database, config) = family_setup(5);
        let index = OfflineIndex::build(&database, &config);
        let searcher = GbdaSearcher::new(&database, &index, config);
        let query = family.member_graph(0).clone();
        let outcome = searcher.search(&query);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for i in 0..database.len() {
            let d = family.known_ged(0, i);
            if d <= 2 {
                near.push(outcome.posteriors[i]);
            } else if d >= 8 {
                far.push(outcome.posteriors[i]);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            avg(&near) > avg(&far),
            "near avg {} should exceed far avg {}",
            avg(&near),
            avg(&far)
        );
    }

    #[test]
    fn search_is_reasonably_effective_on_a_known_family() {
        let (family, database, config) = family_setup(4);
        let index = OfflineIndex::build(&database, &config);
        let searcher = GbdaSearcher::new(&database, &index, config.clone());
        let query = family.member_graph(0).clone();
        let outcome = searcher.search(&query);
        let positives: Vec<usize> = (0..database.len())
            .filter(|&i| family.known_ged(0, i) <= config.tau_hat as usize)
            .collect();
        let confusion = crate::metrics::Confusion::from_sets(&outcome.matches, &positives);
        assert!(
            confusion.f1() > 0.5,
            "GBDA should be reasonably effective on an easy family, F1 = {} (returned {}, expected {})",
            confusion.f1(),
            outcome.matches.len(),
            positives.len()
        );
    }

    #[test]
    fn variant_v1_uses_a_fixed_extended_size() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config);
        let v1 = config
            .clone()
            .with_variant(GbdaVariant::AverageExtendedSize { sample_graphs: 5 });
        let searcher = GbdaSearcher::new(&database, &index, v1);
        assert!(searcher.fixed_extended_size.is_some());
        let query = family.member_graph(1).clone();
        let outcome = searcher.search(&query);
        assert_eq!(outcome.posteriors.len(), database.len());
    }

    #[test]
    fn variant_v2_changes_the_observed_distance() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config);
        let standard = GbdaSearcher::new(&database, &index, config.clone());
        let v2 = GbdaSearcher::new(
            &database,
            &index,
            config.with_variant(GbdaVariant::WeightedGbd { weight: 0.1 }),
        );
        let query = family.member_graph(0).clone();
        let branches = BranchMultiset::from_graph(&query);
        // With w = 0.1 the intersection barely counts, so the observed ϕ is
        // larger than the true GBD for the identical graph.
        assert!(v2.observed_phi(&branches, 0) > standard.observed_phi(&branches, 0));
    }

    #[test]
    fn gamma_one_returns_a_subset_of_gamma_half() {
        let (family, database, config) = family_setup(3);
        let index = OfflineIndex::build(&database, &config);
        let loose = GbdaSearcher::new(
            &database,
            &index,
            GbdaConfig {
                gamma: 0.5,
                ..config.clone()
            },
        );
        let strict = GbdaSearcher::new(
            &database,
            &index,
            GbdaConfig {
                gamma: 0.99,
                ..config
            },
        );
        let query = family.member_graph(0).clone();
        let loose_matches = loose.search(&query).matches;
        let strict_matches = strict.search(&query).matches;
        assert!(strict_matches.iter().all(|m| loose_matches.contains(m)));
    }
}
