//! GBDA as a point estimator of the GED.
//!
//! The search algorithm only needs `Pr[GED ≤ τ̂ | GBD]`, but for the accuracy
//! comparisons it is convenient to also expose a point estimate of the GED
//! itself: the posterior mode `argmax_τ Λ1(τ, ϕ) · Λ3(τ)` over `τ ∈ [0, τ̂_max]`
//! (the `Λ2` denominator does not depend on `τ` and cannot change the mode).

use gbd_ged::GedEstimate;
use gbd_graph::{graph_branch_distance, Graph, LabelAlphabets};
use gbd_prob::{BranchEditModel, GedPrior, Lambda1Table};

/// Maximum-a-posteriori GED estimator driven by the GBD.
#[derive(Debug)]
pub struct GbdaEstimator {
    alphabets: LabelAlphabets,
    tau_max: u64,
    ged_prior: GedPrior,
}

impl GbdaEstimator {
    /// Creates an estimator that considers GED values up to `tau_max`.
    pub fn new(alphabets: LabelAlphabets, tau_max: u64) -> Self {
        GbdaEstimator {
            alphabets,
            tau_max,
            ged_prior: GedPrior::new(alphabets, tau_max),
        }
    }

    /// The posterior mode of the GED given the observed GBD of the pair.
    pub fn map_ged(&self, g1: &Graph, g2: &Graph) -> u64 {
        let phi = graph_branch_distance(g1, g2) as u64;
        let extended = g1.vertex_count().max(g2.vertex_count()).max(1);
        let model = BranchEditModel::new(extended, self.alphabets);
        let table = Lambda1Table::build(&model, self.tau_max);
        let prior = self.ged_prior.column(extended);
        (0..=self.tau_max)
            .max_by(|&a, &b| {
                let score_a = table.get(a, phi) * prior[a as usize];
                let score_b = table.get(b, phi) * prior[b as usize];
                score_a
                    .partial_cmp(&score_b)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0)
    }
}

impl GedEstimate for GbdaEstimator {
    fn name(&self) -> &str {
        "GBDA"
    }

    fn estimate_ged(&self, g1: &Graph, g2: &Graph) -> f64 {
        self.map_ged(g1, g2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::known_ged::ModificationMode;
    use gbd_graph::{GeneratorConfig, KnownGedConfig, KnownGedFamily};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identical_graphs_are_estimated_at_zero() {
        let (g1, _) = gbd_graph::paper_examples::figure1_g1();
        let est = GbdaEstimator::new(LabelAlphabets::new(3, 3), 6);
        assert_eq!(est.estimate_ged(&g1, &g1), 0.0);
        assert_eq!(est.name(), "GBDA");
        assert!(!est.is_lower_bound());
    }

    #[test]
    fn estimates_track_known_distances_monotonically_on_average() {
        let mut rng = StdRng::seed_from_u64(9);
        let base = GeneratorConfig::new(18, 2.4).with_alphabets(LabelAlphabets::new(8, 4));
        let cfg = KnownGedConfig::new(base, 8, 20, 8).with_mode(ModificationMode::RelabelEdges);
        let family = KnownGedFamily::generate(&cfg, &mut rng).unwrap();
        let est = GbdaEstimator::new(LabelAlphabets::new(8, 4), 10);
        let mut near = Vec::new();
        let mut far = Vec::new();
        for i in 1..family.len() {
            let d = family.known_ged(0, i);
            let e = est.estimate_ged(family.member_graph(0), family.member_graph(i));
            if d <= 2 {
                near.push(e);
            } else if d >= 6 {
                far.push(e);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        if !near.is_empty() && !far.is_empty() {
            assert!(avg(&far) > avg(&near), "far {far:?} vs near {near:?}");
        }
    }

    #[test]
    fn estimate_never_exceeds_tau_max() {
        let (g1, _) = gbd_graph::paper_examples::figure1_g1();
        let (g2, _) = gbd_graph::paper_examples::figure1_g2();
        let est = GbdaEstimator::new(LabelAlphabets::new(3, 3), 4);
        assert!(est.estimate_ged(&g1, &g2) <= 4.0);
    }
}
