//! Error type of the search engine.

use std::fmt;

use gbd_graph::GraphError;

/// Convenient result alias for engine operations.
pub type EngineResult<T> = std::result::Result<T, EngineError>;

/// Errors raised while building or querying the GBDA engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The offline stage needs at least two graphs to sample pairs from.
    DatabaseTooSmall {
        /// Number of graphs actually present.
        len: usize,
    },
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// Exported database parts (e.g. from a snapshot file) violate a
    /// cross-structure invariant and cannot back a database.
    CorruptDatabase {
        /// Which invariant failed.
        reason: String,
    },
    /// A dynamic-database operation referenced a graph id that does not
    /// exist or was already removed.
    UnknownGraphId(u64),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DatabaseTooSmall { len } => write!(
                f,
                "the offline stage needs at least two graphs to sample pairs, got {len}"
            ),
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::CorruptDatabase { reason } => {
                write!(f, "corrupt database parts: {reason}")
            }
            EngineError::UnknownGraphId(id) => {
                write!(f, "graph id {id} does not exist or was removed")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = EngineError::DatabaseTooSmall { len: 1 };
        assert!(e.to_string().contains("at least two graphs"));
        assert!(e.to_string().contains('1'));
        let e = EngineError::from(GraphError::Parse("bad".into()));
        assert!(e.to_string().contains("bad"));
        let e = EngineError::CorruptDatabase {
            reason: "spans overlap".into(),
        };
        assert!(e.to_string().contains("spans overlap"));
        let e = EngineError::UnknownGraphId(42);
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn graph_errors_expose_their_source() {
        use std::error::Error;
        let e = EngineError::from(GraphError::Parse("x".into()));
        assert!(e.source().is_some());
        assert!(EngineError::DatabaseTooSmall { len: 0 }.source().is_none());
    }
}
