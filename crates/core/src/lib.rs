//! # gbda-core — the GBDA graph similarity search engine
//!
//! This crate assembles the paper's primary contribution (Section VI): a
//! probabilistic graph similarity search that, given a query graph `Q`, a
//! database `D`, a similarity threshold `τ̂` and a probability threshold `γ`,
//! returns every `G ∈ D` with `Pr[GED(Q, G) ≤ τ̂ | GBD(Q, G)] ≥ γ` — in
//! `O(nd + τ̂³)` per database graph instead of the NP-hard exact search.
//!
//! * [`database`] — the graph database with pre-computed branch multisets
//!   plus the arena-backed flat interned branch sets,
//! * [`offline`] — the offline stage (GBD prior, GED prior, Λ1 table cache),
//! * [`search`] — the online stage (Algorithm 1) plus the GBDA-V1/V2
//!   variants,
//! * [`engine`] — the execution layer: [`QueryEngine`] with batch queries,
//!   shard-parallel scans and per-stage statistics,
//! * [`filter`] — the candidate-pruning layer: the lower-bound filter
//!   cascade and inverted-index count filter that resolve most graphs
//!   without merging their branch runs,
//! * [`kernel`] — the one generic scan loop ([`ScanKernel`]) every search
//!   path instantiates, parameterized by a cutoff policy (static γ vs.
//!   tightening rank bound) and a result sink (collect / top-k heap /
//!   streaming callback),
//! * [`dynamic`] — the dynamic storage layer: [`DynamicDatabase`] (immutable
//!   base segment + append-only delta + tombstones + compaction) and the
//!   segment-aware [`DynamicEngine`],
//! * [`concurrent`] — snapshot-isolated serving over the dynamic layer:
//!   immutable published [`Generation`]s, the pinning [`SnapshotReader`],
//!   and [`ConcurrentEngine`] (mutex-serialized writer + optional
//!   background compaction) for readers that never block writers,
//! * [`topk`] — ranked (top-k) query primitives: the bounded heap, the
//!   deterministic ranking order (posterior descending, graph id ascending)
//!   and the sort-truncate reference every ranked path is proven against,
//! * [`posterior_cache`] — memoization of the posterior per `(|V'1|, ϕ)`,
//! * [`baseline`] — a uniform [`SimilaritySearcher`] interface shared with
//!   the LSAP / Greedy-Sort-GED / seriation baselines,
//! * [`estimator`] — GBDA as a point estimator of the GED,
//! * [`error`] — the engine error type,
//! * [`effectiveness`] — precision / recall / F1 used by the
//!   effectiveness experiments (runtime telemetry is the separate
//!   `gbd-telemetry` crate, fed by every scan).
//!
//! ```
//! use gbd_graph::GeneratorConfig;
//! use gbda_core::{GbdaConfig, GbdaSearcher, GraphDatabase, OfflineIndex};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let graphs = GeneratorConfig::new(12, 2.0).generate_many(30, &mut rng).unwrap();
//! let query = graphs[0].clone();
//! let database = GraphDatabase::from_graphs(graphs);
//! let config = GbdaConfig::new(3, 0.8).with_sample_pairs(200);
//! let index = OfflineIndex::build(&database, &config).unwrap();
//! let searcher = GbdaSearcher::new(&database, &index, config);
//! let outcome = searcher.search(&query);
//! assert!(outcome.matches.contains(&0)); // the query itself is similar
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod concurrent;
pub mod config;
pub mod database;
pub mod dynamic;
pub mod effectiveness;
pub mod engine;
pub mod error;
pub mod estimator;
pub mod filter;
pub mod kernel;
mod obs;
pub mod offline;
pub mod posterior_cache;
pub mod search;
pub mod topk;

/// The old name of [`effectiveness`], kept for one release.
#[deprecated(
    since = "0.1.0",
    note = "renamed to `effectiveness`; runtime telemetry lives in the `gbd-telemetry` crate"
)]
pub use effectiveness as metrics;

pub use baseline::{EstimatorSearcher, SimilaritySearcher};
pub use concurrent::{ConcurrentEngine, Generation, SnapshotReader};
pub use config::{DurabilityConfig, GbdaConfig, GbdaVariant, TelemetryLevel};
pub use database::{BucketRun, DatabaseParts, GraphAggregate, GraphDatabase, Posting};
pub use dynamic::{
    DeltaSegment, DynamicDatabase, DynamicEngine, DynamicOutcome, DynamicView, Tombstones,
};
pub use effectiveness::{aggregate, Confusion};
pub use engine::QueryEngine;
pub use error::{EngineError, EngineResult};
pub use estimator::GbdaEstimator;
pub use filter::planner::{Planner, QueryPlan};
pub use filter::{FilterCascade, PostingsCursors, RankDecision, SegmentIndex, SizeDecision};
pub use kernel::{
    BoundClass, BucketPlan, CollectAll, Cutoff, ScanKernel, Sink, StaticPhi, Subscriber,
    TighteningRank, TopKSink,
};
pub use offline::{OfflineIndex, OfflineStats};
pub use posterior_cache::PosteriorCache;
pub use search::{GbdaSearcher, SearchOutcome, SearchStats};
pub use topk::{
    rank_by_posterior, rank_order, DynamicTopKOutcome, RankedHit, TopKHeap, TopKOutcome,
};
