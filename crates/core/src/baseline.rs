//! A uniform similarity-search interface over GBDA and the three baselines.
//!
//! The efficiency and effectiveness experiments (Figures 7–21 and 31–42) run
//! the same query workload through four methods. The baselines (LSAP,
//! Greedy-Sort-GED, Graph Seriation) are *estimate-and-filter* searchers:
//! they estimate the GED of every (query, graph) pair and report the graphs
//! whose estimate is at most τ̂. GBDA reports graphs whose posterior clears
//! the probability threshold γ.

use std::time::Instant;

use gbd_ged::GedEstimate;
use gbd_graph::Graph;

use crate::database::GraphDatabase;
use crate::search::{GbdaSearcher, SearchOutcome};

/// Anything that can answer a graph similarity-search query over a database.
pub trait SimilaritySearcher {
    /// Method name used in experiment tables.
    fn name(&self) -> String;

    /// Runs the similarity search for one query graph.
    fn search(&self, query: &Graph) -> SearchOutcome;
}

/// Estimate-and-filter searcher wrapping any [`GedEstimate`] implementation.
pub struct EstimatorSearcher<'a, E> {
    database: &'a GraphDatabase,
    estimator: E,
    tau_hat: f64,
}

impl<'a, E: GedEstimate> EstimatorSearcher<'a, E> {
    /// Creates a searcher that returns graphs whose estimated GED is at most
    /// `tau_hat`.
    pub fn new(database: &'a GraphDatabase, estimator: E, tau_hat: f64) -> Self {
        EstimatorSearcher {
            database,
            estimator,
            tau_hat,
        }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

impl<'a, E: GedEstimate> SimilaritySearcher for EstimatorSearcher<'a, E> {
    fn name(&self) -> String {
        self.estimator.name().to_owned()
    }

    fn search(&self, query: &Graph) -> SearchOutcome {
        let started = Instant::now();
        let mut matches = Vec::new();
        let mut posteriors = Vec::with_capacity(self.database.len());
        for i in 0..self.database.len() {
            let estimate = self.estimator.estimate_ged(query, self.database.graph(i));
            // Record a pseudo-score so downstream tooling can inspect it: the
            // larger the estimate, the smaller the score.
            posteriors.push(1.0 / (1.0 + estimate.max(0.0)));
            if estimate <= self.tau_hat + 1e-9 {
                matches.push(i);
            }
        }
        SearchOutcome {
            matches,
            posteriors,
            seconds: started.elapsed().as_secs_f64(),
            ..SearchOutcome::default()
        }
    }
}

impl<'a> SimilaritySearcher for GbdaSearcher<'a> {
    fn name(&self) -> String {
        "GBDA".to_owned()
    }

    fn search(&self, query: &Graph) -> SearchOutcome {
        GbdaSearcher::search(self, query)
    }
}

impl<'a> SimilaritySearcher for crate::engine::QueryEngine<'a> {
    fn name(&self) -> String {
        "GBDA".to_owned()
    }

    fn search(&self, query: &Graph) -> SearchOutcome {
        crate::engine::QueryEngine::search(self, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_assignment::{GreedyGed, LsapGed};
    use gbd_ged::ExactGed;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    fn database() -> GraphDatabase {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        GraphDatabase::from_graphs(vec![g1, g2])
    }

    #[test]
    fn exact_searcher_matches_ground_truth_thresholds() {
        let db = database();
        let (q, _) = figure1_g1();
        // GED(q, g1) = 0, GED(q, g2) = 3.
        let searcher = EstimatorSearcher::new(&db, ExactGed, 2.0);
        assert_eq!(searcher.search(&q).matches, vec![0]);
        let searcher = EstimatorSearcher::new(&db, ExactGed, 3.0);
        assert_eq!(searcher.search(&q).matches, vec![0, 1]);
    }

    #[test]
    fn lower_bound_searchers_never_miss_true_matches() {
        // LSAP estimates lower-bound the GED, so every graph within τ̂ must be
        // returned (the 100%-recall property the paper highlights).
        let db = database();
        let (q, _) = figure1_g1();
        let lsap = EstimatorSearcher::new(&db, LsapGed, 3.0);
        let result = lsap.search(&q);
        assert!(result.matches.contains(&0));
        assert!(result.matches.contains(&1));
    }

    #[test]
    fn searcher_names_are_propagated() {
        let db = database();
        assert_eq!(EstimatorSearcher::new(&db, LsapGed, 1.0).name(), "LSAP");
        assert_eq!(
            EstimatorSearcher::new(&db, GreedyGed, 1.0).name(),
            "greedysort"
        );
        assert_eq!(
            EstimatorSearcher::new(&db, ExactGed, 1.0)
                .estimator()
                .name(),
            "exact-astar"
        );
    }

    #[test]
    fn outcome_reports_scores_for_every_graph() {
        let db = database();
        let (q, _) = figure1_g1();
        let searcher = EstimatorSearcher::new(&db, GreedyGed, 0.5);
        let outcome = searcher.search(&q);
        assert_eq!(outcome.posteriors.len(), 2);
        assert!(outcome.posteriors[0] > outcome.posteriors[1]);
    }
}
