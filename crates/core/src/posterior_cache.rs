//! Memoization of the posterior `Φ = Pr[GED ≤ τ̂ | GBD = ϕ]`.
//!
//! Step 3 of Algorithm 1 looks expensive per database graph, but the value
//! only depends on the pair through `(|V'1|, ϕ)`: the extended size selects
//! the `Λ1` table and the `Λ3` column, and `ϕ` selects the `Λ1` row and the
//! `Λ2` denominator. A database has few distinct sizes and `ϕ` is bounded by
//! the largest extended size, so a whole scan collapses to at most
//! `|sizes| × ϕ_max` genuine posterior evaluations — everything else is a
//! lookup. [`PosteriorCache`] performs exactly the computation of the seed
//! path (same [`posterior_ged_at_most`] call on the same inputs), so cached
//! results are bit-identical to uncached ones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

use gbd_prob::posterior_ged_at_most;

use crate::offline::OfflineIndex;

/// A thread-safe memo of posterior values keyed by `(|V'1|, ϕ)`.
///
/// The cache is tied to one `τ̂` (the third determinant of the posterior);
/// the engine owns one cache per configuration.
#[derive(Debug)]
pub struct PosteriorCache {
    tau_hat: u64,
    map: RwLock<HashMap<(usize, u64), f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PosteriorCache {
    /// Creates an empty cache for the given similarity threshold `τ̂`.
    pub fn new(tau_hat: u64) -> Self {
        PosteriorCache {
            tau_hat,
            map: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The threshold `τ̂` this cache memoizes posteriors for.
    pub fn tau_hat(&self) -> u64 {
        self.tau_hat
    }

    /// The posterior `Pr[GED ≤ τ̂ | GBD = ϕ]` for extended size `|V'1|`,
    /// computed on first use and remembered afterwards.
    pub fn posterior(&self, index: &OfflineIndex, extended_size: usize, phi: u64) -> f64 {
        self.posterior_tracked(index, extended_size, phi).0
    }

    /// Like [`Self::posterior`], additionally reporting whether the value was
    /// already memoized (used for per-query statistics).
    pub fn posterior_tracked(
        &self,
        index: &OfflineIndex,
        extended_size: usize,
        phi: u64,
    ) -> (f64, bool) {
        let key = (extended_size, phi);
        if let Some(&value) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if gbd_telemetry::metrics_enabled() {
                crate::obs::cache_metrics().hits.inc();
            }
            return (value, true);
        }
        // Exactly the seed evaluation path, so the memo is bit-identical.
        let lambda1 = index.lambda1_table(extended_size);
        let ged_prior = index.ged_prior().column(extended_size);
        let gbd_prior = index.gbd_prior().probability(phi as usize);
        let value = posterior_ged_at_most(self.tau_hat, phi, &lambda1, &ged_prior, gbd_prior);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if gbd_telemetry::metrics_enabled() {
            crate::obs::cache_metrics().misses.inc();
        }
        // A racing thread may have inserted concurrently; both computed the
        // same deterministic value, so either insert wins harmlessly.
        self.map.write().insert(key, value);
        (value, false)
    }

    /// Number of memoized `(|V'1|, ϕ)` entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Returns `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Total lookup hits since creation.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses (genuine evaluations) since creation.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GbdaConfig;
    use crate::database::GraphDatabase;
    use gbd_graph::{GeneratorConfig, LabelAlphabets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (GraphDatabase, OfflineIndex, GbdaConfig) {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = GeneratorConfig::new(10, 2.0).with_alphabets(LabelAlphabets::new(5, 3));
        let graphs = cfg.generate_many(12, &mut rng).unwrap();
        let database = GraphDatabase::from_graphs(graphs);
        let config = GbdaConfig::new(4, 0.8).with_sample_pairs(60);
        let index = OfflineIndex::build(&database, &config).unwrap();
        (database, index, config)
    }

    #[test]
    fn cached_values_are_bit_identical_to_uncached_evaluation() {
        let (_, index, config) = setup();
        let cache = PosteriorCache::new(config.tau_hat);
        for size in [8usize, 10, 12] {
            for phi in 0..=10u64 {
                let cached = cache.posterior(&index, size, phi);
                let lambda1 = index.lambda1_table(size);
                let ged_prior = index.ged_prior().column(size);
                let gbd_prior = index.gbd_prior().probability(phi as usize);
                let direct =
                    posterior_ged_at_most(config.tau_hat, phi, &lambda1, &ged_prior, gbd_prior);
                assert_eq!(
                    cached.to_bits(),
                    direct.to_bits(),
                    "cache diverges at size {size}, ϕ = {phi}"
                );
                // And the memoized re-read returns the very same bits.
                assert_eq!(
                    cache.posterior(&index, size, phi).to_bits(),
                    direct.to_bits()
                );
            }
        }
    }

    #[test]
    fn hits_and_misses_are_tracked() {
        let (_, index, config) = setup();
        let cache = PosteriorCache::new(config.tau_hat);
        assert!(cache.is_empty());
        let (_, hit) = cache.posterior_tracked(&index, 10, 3);
        assert!(!hit);
        let (_, hit) = cache.posterior_tracked(&index, 10, 3);
        assert!(hit);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.tau_hat(), config.tau_hat);
    }

    #[test]
    fn distinct_keys_are_memoized_separately() {
        let (_, index, config) = setup();
        let cache = PosteriorCache::new(config.tau_hat);
        let a = cache.posterior(&index, 10, 0);
        let b = cache.posterior(&index, 10, 9);
        let c = cache.posterior(&index, 12, 0);
        assert_eq!(cache.len(), 3);
        // A GBD of 0 makes a small GED far more plausible than a GBD of 9.
        assert!(a > b);
        assert!(c > 0.0);
    }
}
