//! # gbd-store — the persistent storage engine of the GBDA workspace
//!
//! The offline stage of GBDA (catalog interning, flat-run arena, per-graph
//! aggregates, CSR postings) is paid once per database build; this crate
//! makes that investment durable. A [`Snapshot`] captures a
//! [`gbda_core::GraphDatabase`] into a versioned, checksummed,
//! dependency-free binary file, and [`load_database`] rebuilds it without
//! recomputing any of those structures — measurably faster than
//! `GraphDatabase::from_graphs` on the committed 10k-graph workload (see
//! `results/BENCH_store.json`).
//!
//! Corrupted, truncated or foreign files are always reported as a typed
//! [`StoreError`] — never a panic: the header checksum catches bit rot, the
//! bounds-checked decoders catch structural damage, and
//! `GraphDatabase::from_parts` re-validates every cross-structure invariant
//! before a database is handed out. The only `expect`/`unreachable!` left in
//! this crate's non-test code are infallible by construction (fixed-width
//! slice conversions after a bounds-checked `take`, lookups of keys just
//! enumerated) — no input byte stream reaches them.
//!
//! Dynamic updates on top of a loaded (or built) base live in
//! [`gbda_core::DynamicDatabase`]; [`DurableDatabase`] makes them
//! **crash-safe**: every insert/remove is appended to a checksummed
//! write-ahead log before it is acknowledged, compaction rotates snapshot
//! generations atomically behind a tiny [`Manifest`], and recovery replays
//! the log onto the loaded base — truncating a torn tail, rejecting mid-log
//! corruption. All file traffic goes through the [`Vfs`] trait, so the
//! whole stack is proven under [`FaultVfs`]'s deterministic crash/torn-
//! write/bit-flip injection (see `tests/durability.rs`).
//!
//! ```
//! use gbd_store::{load_database, save_database};
//! use gbd_graph::{GeneratorConfig, Vocabulary};
//! use gbda_core::GraphDatabase;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(9);
//! let graphs = GeneratorConfig::new(10, 2.0).generate_many(12, &mut rng).unwrap();
//! let database = GraphDatabase::from_graphs(graphs);
//!
//! let path = std::env::temp_dir().join("gbd-store-doctest.snap");
//! save_database(&database, &Vocabulary::new(), &path).unwrap();
//! let (loaded, _vocabulary) = load_database(&path).unwrap();
//! assert_eq!(loaded.len(), database.len());
//! assert_eq!(loaded.gbd_between(0, 1), database.gbd_between(0, 1));
//! std::fs::remove_file(&path).ok();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod concurrent;
pub mod durable;
pub mod error;
pub mod format;
pub mod manifest;
mod obs;
pub mod snapshot;
pub mod vfs;
pub mod wal;

pub use concurrent::ConcurrentDurable;
pub use durable::DurableDatabase;
pub use error::{StoreError, StoreResult};
pub use manifest::Manifest;
pub use snapshot::{load_database, save_database, Snapshot};
pub use vfs::{FaultSchedule, FaultVfs, StdVfs, Vfs};
pub use wal::{WalRecord, WalReplay, WalWriter};

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::{GeneratorConfig, Graph, LabelAlphabets, Vocabulary};
    use gbda_core::{EngineError, GraphDatabase};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graphs() -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut graphs: Vec<Graph> = Vec::new();
        for size in [6usize, 9, 12] {
            let cfg = GeneratorConfig::new(size, 2.1).with_alphabets(LabelAlphabets::new(5, 3));
            graphs.extend(cfg.generate_many(6, &mut rng).unwrap());
        }
        graphs[0].set_name("first");
        graphs[4].set_name("with spaces and ünicode");
        graphs
    }

    fn sample_database() -> GraphDatabase {
        GraphDatabase::from_graphs(sample_graphs())
    }

    fn database_identical(a: &GraphDatabase, b: &GraphDatabase) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.alphabets(), b.alphabets());
        assert_eq!(a.max_vertices(), b.max_vertices());
        assert_eq!(a.distinct_sizes(), b.distinct_sizes());
        assert_eq!(a.arena_len(), b.arena_len());
        assert_eq!(a.postings_len(), b.postings_len());
        assert_eq!(a.catalog().len(), b.catalog().len());
        for i in 0..a.len() {
            assert_eq!(a.graph(i).name(), b.graph(i).name());
            assert_eq!(a.flat(i).runs(), b.flat(i).runs());
            assert_eq!(a.branches(i), b.branches(i));
            assert_eq!(a.bucket_of(i), b.bucket_of(i));
            assert_eq!(a.distinct_runs(i), b.distinct_runs(i));
            assert_eq!(a.max_run_count(i), b.max_run_count(i));
        }
        for id in 0..a.catalog().len() as u32 {
            assert_eq!(a.catalog().branch(id), b.catalog().branch(id));
            assert_eq!(a.postings(id), b.postings(id));
        }
    }

    #[test]
    fn snapshot_round_trips_in_memory() {
        let database = sample_database();
        let mut vocabulary = Vocabulary::new();
        vocabulary.intern("carbon");
        vocabulary.intern("oxygen");
        let bytes =
            Snapshot::from_database_with_vocabulary(&database, vocabulary.clone()).to_bytes();
        let snapshot = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snapshot.graph_count(), database.len());
        let (loaded, loaded_vocabulary) = snapshot.into_database().unwrap();
        database_identical(&database, &loaded);
        assert!(loaded.verify_postings());
        assert_eq!(loaded_vocabulary.len(), vocabulary.len());
        assert_eq!(loaded_vocabulary.get("carbon"), vocabulary.get("carbon"));
    }

    #[test]
    fn snapshot_round_trips_through_a_file() {
        let database = sample_database();
        let path = std::env::temp_dir().join("gbd-store-test-roundtrip.snap");
        save_database(&database, &Vocabulary::new(), &path).unwrap();
        let (loaded, _) = load_database(&path).unwrap();
        database_identical(&database, &loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_database_round_trips() {
        let database = GraphDatabase::from_graphs(Vec::new());
        let bytes = Snapshot::from_database(&database).to_bytes();
        let (loaded, _) = Snapshot::from_bytes(&bytes)
            .unwrap()
            .into_database()
            .unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.arena_len(), 0);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Snapshot::load("/nonexistent/definitely/missing.snap").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }

    #[test]
    fn foreign_and_future_files_are_rejected() {
        assert_eq!(
            Snapshot::from_bytes(b"not a snapshot at all").unwrap_err(),
            StoreError::BadMagic
        );
        assert_eq!(
            Snapshot::from_bytes(b"abc").unwrap_err(),
            StoreError::BadMagic
        );
        // Bump the version field.
        let mut bytes = Snapshot::from_database(&sample_database()).to_bytes();
        bytes[8] = 99;
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            StoreError::UnsupportedVersion(99)
        );
    }

    /// Truncating the file at *every* byte boundary must yield a typed
    /// error, never a panic. This sweeps the whole header/section space.
    #[test]
    fn every_truncation_point_errors_cleanly() {
        let bytes = Snapshot::from_database(&sample_database()).to_bytes();
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len])
                .err()
                .unwrap_or_else(|| panic!("truncation at {len} must fail"));
            assert!(
                matches!(
                    err,
                    StoreError::BadMagic
                        | StoreError::Truncated { .. }
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::Corrupt(_)
                ),
                "unexpected error at {len}: {err}"
            );
        }
    }

    /// Flipping any single byte of the payload must be caught by the
    /// checksum (header bytes are caught by their own field checks).
    #[test]
    fn bit_rot_is_caught_by_the_checksum() {
        let bytes = Snapshot::from_database(&sample_database()).to_bytes();
        let header = 8 + 4 + 4 + 8 + 8;
        let mut rng_positions = Vec::new();
        let payload_len = bytes.len() - header;
        for k in 0..32 {
            rng_positions.push(header + (k * 997) % payload_len);
        }
        for position in rng_positions {
            let mut copy = bytes.clone();
            copy[position] ^= 0x40;
            assert!(
                matches!(
                    Snapshot::from_bytes(&copy).unwrap_err(),
                    StoreError::ChecksumMismatch { .. }
                ),
                "flip at {position} must trip the checksum"
            );
        }
    }

    /// A file that passes the checksum but carries inconsistent sections is
    /// rejected by the database-level validation (never panics). Re-signing
    /// the corrupted payload simulates a buggy writer rather than bit rot.
    #[test]
    fn internally_inconsistent_payloads_are_rejected() {
        let database = sample_database();
        let mut snapshot = Snapshot::from_database(&database);
        // Reach into the parts and break a cross-structure invariant.
        snapshot_parts_mut(&mut snapshot).sizes[0] += 1;
        let bytes = snapshot.to_bytes();
        let err = Snapshot::from_bytes(&bytes)
            .unwrap()
            .into_database()
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::InvalidDatabase(EngineError::CorruptDatabase { .. })
        ));
    }

    /// Test-only access to the parts (the public API never exposes them
    /// mutably).
    fn snapshot_parts_mut(snapshot: &mut Snapshot) -> &mut gbda_core::DatabaseParts {
        &mut snapshot.parts
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = Snapshot::from_database(&sample_database()).to_bytes();
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }
}
