//! The manifest — the atomic commit point of the durable store.
//!
//! A durable database directory holds, at any instant:
//!
//! ```text
//! MANIFEST            → { generation: g }        (this file)
//! base-0000000g.snap  → snapshot of generation g
//! wal-0000000g.log    → mutations applied on top of generation g
//! (stale base-*/wal-* of older generations, awaiting cleanup)
//! ```
//!
//! Compaction builds the *next* generation's snapshot and log beside the
//! live ones, syncs them, then publishes the switch by rewriting `MANIFEST`
//! via the staging → sync → rename → parent-dir-sync dance. Readers that
//! crash-land anywhere in that sequence see either the old manifest (old
//! generation, fully intact) or the new one (new files, fully synced before
//! the rename) — never a half-state.
//!
//! The file itself is tiny and fully checksummed; any damage is a typed
//! [`StoreError`], never a panic.

use std::path::{Path, PathBuf};

use crate::error::{StoreError, StoreResult};
use crate::format::{fnv1a64, Reader, Writer};
use crate::vfs::{parent_dir, Vfs};

/// The manifest's 8-byte magic.
pub const MANIFEST_MAGIC: [u8; 8] = *b"GBDMANIF";

/// The manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside a durable database directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// The generation pointer: which snapshot + log pair is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// The live generation number.
    pub generation: u64,
}

impl Manifest {
    /// Snapshot file name of a generation.
    pub fn snapshot_name(generation: u64) -> String {
        format!("base-{generation:08}.snap")
    }

    /// Log file name of a generation.
    pub fn wal_name(generation: u64) -> String {
        format!("wal-{generation:08}.log")
    }

    /// Path of this generation's snapshot inside `dir`.
    pub fn snapshot_path(&self, dir: &Path) -> PathBuf {
        dir.join(Self::snapshot_name(self.generation))
    }

    /// Path of this generation's log inside `dir`.
    pub fn wal_path(&self, dir: &Path) -> PathBuf {
        dir.join(Self::wal_name(self.generation))
    }

    /// Encodes the manifest: magic, version, generation, checksum of the
    /// preceding bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&MANIFEST_MAGIC);
        w.u32(MANIFEST_VERSION);
        w.u64(self.generation);
        let checksum = fnv1a64(&w.into_bytes());
        let mut w = Writer::new();
        w.bytes(&MANIFEST_MAGIC);
        w.u32(MANIFEST_VERSION);
        w.u64(self.generation);
        w.u64(checksum);
        w.into_bytes()
    }

    /// Decodes and verifies a manifest image.
    ///
    /// # Errors
    /// [`StoreError::BadMagic`] for a foreign file,
    /// [`StoreError::UnsupportedVersion`] for a future format, and
    /// [`StoreError::CorruptAt`] for truncation or checksum damage — the
    /// manifest is written atomically, so *any* damage means the directory
    /// was corrupted after the fact and recovery must stop.
    pub fn from_bytes(bytes: &[u8]) -> StoreResult<Self> {
        let mut r = Reader::new(bytes);
        let magic = r
            .take(8, "manifest magic")
            .map_err(|_| StoreError::CorruptAt {
                offset: 0,
                reason: "manifest shorter than its magic".into(),
            })?;
        if magic != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r
            .u32("manifest version")
            .map_err(|_| StoreError::CorruptAt {
                offset: r.position() as u64,
                reason: "manifest truncated before its version".into(),
            })?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let generation = r
            .u64("manifest generation")
            .map_err(|_| StoreError::CorruptAt {
                offset: r.position() as u64,
                reason: "manifest truncated before its generation".into(),
            })?;
        let checksum_offset = r.position();
        let checksum = r
            .u64("manifest checksum")
            .map_err(|_| StoreError::CorruptAt {
                offset: checksum_offset as u64,
                reason: "manifest truncated before its checksum".into(),
            })?;
        let actual = fnv1a64(&bytes[..checksum_offset]);
        if checksum != actual {
            return Err(StoreError::CorruptAt {
                offset: checksum_offset as u64,
                reason: "manifest checksum mismatch".into(),
            });
        }
        if !r.is_exhausted() {
            return Err(StoreError::CorruptAt {
                offset: r.position() as u64,
                reason: format!("{} trailing bytes after the manifest", r.remaining()),
            });
        }
        Ok(Manifest { generation })
    }

    /// Loads the manifest of a durable database directory.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the file cannot be read, plus everything
    /// [`Manifest::from_bytes`] rejects.
    pub fn load<V: Vfs>(vfs: &V, dir: &Path) -> StoreResult<Self> {
        Self::from_bytes(&vfs.read(&dir.join(MANIFEST_FILE))?)
    }

    /// Atomically publishes this manifest into `dir`: staging file → sync →
    /// rename over `MANIFEST` → parent-dir sync. A crash anywhere leaves
    /// either the previous manifest or this one, intact.
    ///
    /// # Errors
    /// [`StoreError::Io`] when any step fails; the staging file is cleaned
    /// up best-effort and the previous manifest remains live.
    pub fn store<V: Vfs>(&self, vfs: &V, dir: &Path) -> StoreResult<()> {
        let target = dir.join(MANIFEST_FILE);
        let staging = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let result = (|| {
            vfs.write(&staging, &self.to_bytes())?;
            vfs.sync(&staging)?;
            vfs.rename(&staging, &target)?;
            vfs.sync_dir(&parent_dir(&target))
        })();
        if result.is_err() {
            vfs.remove(&staging).ok();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultSchedule, FaultVfs};

    #[test]
    fn manifest_round_trips() {
        let m = Manifest { generation: 42 };
        assert_eq!(Manifest::from_bytes(&m.to_bytes()).unwrap(), m);
        assert_eq!(Manifest::snapshot_name(3), "base-00000003.snap");
        assert_eq!(Manifest::wal_name(3), "wal-00000003.log");
    }

    #[test]
    fn foreign_future_and_damaged_manifests_are_typed_errors() {
        assert_eq!(
            Manifest::from_bytes(b"NOTAMANI00000000000000000000").unwrap_err(),
            StoreError::BadMagic
        );
        let bytes = Manifest { generation: 1 }.to_bytes();
        // Future version.
        let mut copy = bytes.clone();
        copy[8] = 99;
        assert_eq!(
            Manifest::from_bytes(&copy).unwrap_err(),
            StoreError::UnsupportedVersion(99)
        );
        // Every truncation point.
        for len in 0..bytes.len() {
            assert!(
                matches!(
                    Manifest::from_bytes(&bytes[..len]).unwrap_err(),
                    StoreError::CorruptAt { .. } | StoreError::BadMagic
                ),
                "truncation at {len}"
            );
        }
        // Every single-byte flip past the version field.
        for position in 12..bytes.len() {
            let mut copy = bytes.clone();
            copy[position] ^= 0x04;
            assert!(
                matches!(
                    Manifest::from_bytes(&copy).unwrap_err(),
                    StoreError::CorruptAt { .. }
                ),
                "flip at {position}"
            );
        }
        // Trailing garbage.
        let mut copy = bytes.clone();
        copy.push(0);
        assert!(matches!(
            Manifest::from_bytes(&copy).unwrap_err(),
            StoreError::CorruptAt { .. }
        ));
    }

    #[test]
    fn store_is_atomic_under_power_loss() {
        let vfs = FaultVfs::new();
        let dir = PathBuf::from("db");
        vfs.create_dir_all(&dir).unwrap();
        Manifest { generation: 1 }.store(&vfs, &dir).unwrap();
        vfs.power_cycle();
        assert_eq!(Manifest::load(&vfs, &dir).unwrap().generation, 1);

        // Crash at every byte of the rewrite: afterwards the manifest is
        // generation 1 or generation 2, never broken.
        let bytes_needed = {
            let probe = FaultVfs::new();
            probe.create_dir_all(&dir).unwrap();
            Manifest { generation: 1 }.store(&probe, &dir).unwrap();
            probe.arm(FaultSchedule::default());
            Manifest { generation: 2 }.store(&probe, &dir).unwrap();
            probe.bytes_charged()
        };
        for budget in 0..bytes_needed {
            let vfs = FaultVfs::new();
            vfs.create_dir_all(&dir).unwrap();
            Manifest { generation: 1 }.store(&vfs, &dir).unwrap();
            vfs.arm(FaultSchedule::crash_after(budget));
            let _ = Manifest { generation: 2 }.store(&vfs, &dir);
            vfs.power_cycle();
            let recovered = Manifest::load(&vfs, &dir)
                .unwrap_or_else(|e| panic!("crash at {budget} broke the manifest: {e}"));
            assert!(
                recovered.generation == 1 || recovered.generation == 2,
                "crash at {budget}"
            );
        }
    }
}
