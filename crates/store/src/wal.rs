//! The write-ahead log of the durable dynamic layer.
//!
//! # Record layout
//!
//! ```text
//! ┌───────────────────────────────────────────────────────────────┐
//! │ record   length u32 · FNV-1a/64 of body u64 ·                 │
//! │          header check u32 (FNV-1a/64 of the 12 bytes above,   │
//! │          truncated) · body                                    │
//! │ body     sequence u64 · kind u8 · payload                     │
//! │   kind 1 CHECKPOINT  generation u64 · next id u64 ·           │
//! │                      base id count u64 · base ids u64…        │
//! │   kind 2 INSERT      stable id u64 · graph (snapshot codec)   │
//! │   kind 3 REMOVE      stable id u64                            │
//! └───────────────────────────────────────────────────────────────┘
//! ```
//!
//! The header check covers the length and the body checksum, so a bit
//! flip in the *length* field cannot masquerade as a torn tail: a frame
//! that claims more bytes than the file holds is only trusted to be an
//! interrupted final write when its header checksum is intact.
//!
//! Records are appended through the [`Vfs`] and synced before a mutation is
//! acknowledged (when [`DurabilityConfig::sync_acks`] is on), so the log on
//! disk is always *some prefix* of the acknowledged history plus at most
//! one torn tail record.
//!
//! # Torn tail vs. mid-log corruption
//!
//! [`decode_wal`] distinguishes the two failure classes a crash-recovery
//! path must treat differently:
//!
//! * a record that runs past the end of the file (with an intact header
//!   check), or whose body checksum fails **on the last record**, is a
//!   *torn tail* — the write the crash interrupted. It is dropped (and the
//!   caller truncates the file), which is safe because a torn record was
//!   by construction never acknowledged;
//! * a checksum or structure failure **before** the last record is mid-log
//!   corruption of data that *was* synced — silently truncating there could
//!   drop acknowledged mutations, so it is rejected with a typed
//!   [`StoreError::CorruptAt`] carrying the byte offset. A damaged *header*
//!   is classified the same way: it counts as torn only when no intact
//!   record follows it (i.e. it is plausibly the final, interrupted write);
//!   if any intact record can be found after it, acknowledged data would be
//!   lost by truncating, so it is `CorruptAt`.
//!
//! Sequence numbers are global and monotone (they continue across log
//! rotations), so a stale or spliced log is caught by the very first
//! record.
//!
//! [`DurabilityConfig::sync_acks`]: gbda_core::DurabilityConfig

use std::path::{Path, PathBuf};

use gbd_graph::Graph;

use crate::error::{StoreError, StoreResult};
use crate::format::{fnv1a64, Reader, Writer};
use crate::snapshot::{decode_graph, encode_graph};
use crate::vfs::Vfs;

/// Record kind tags.
const KIND_CHECKPOINT: u8 = 1;
const KIND_INSERT: u8 = 2;
const KIND_REMOVE: u8 = 3;

/// Bytes of the per-record frame header (length u32 + body checksum u64 +
/// header check u32).
const FRAME_HEADER: usize = 4 + 8 + 4;

/// Builds the 16-byte frame header + body for one encoded record body.
fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut head = Writer::new();
    head.u32(body.len() as u32);
    head.u64(fnv1a64(body));
    let mut out = head.into_bytes();
    let head_check = fnv1a64(&out) as u32;
    out.extend_from_slice(&head_check.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// One logical mutation (or checkpoint marker) in the log.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// The first record of every log file: binds the log to the snapshot
    /// generation it extends and carries everything id assignment needs to
    /// resume exactly where it left off.
    Checkpoint {
        /// The snapshot generation this log's mutations apply on top of.
        generation: u64,
        /// The id the next insert will be assigned.
        next_id: u64,
        /// Stable ids of the base-segment graphs, by base index.
        base_ids: Vec<u64>,
    },
    /// An insert acknowledged with the given stable id.
    Insert {
        /// The stable id the insert was acknowledged with — replay verifies
        /// the re-assigned id matches.
        id: u64,
        /// The inserted graph.
        graph: Graph,
    },
    /// A remove of the given stable id.
    Remove {
        /// The removed stable id.
        id: u64,
    },
}

/// Encodes one record (frame header + checksummed body).
pub fn encode_record(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut body = Writer::new();
    body.u64(seq);
    match record {
        WalRecord::Checkpoint {
            generation,
            next_id,
            base_ids,
        } => {
            body.u8(KIND_CHECKPOINT);
            body.u64(*generation);
            body.u64(*next_id);
            body.u64(base_ids.len() as u64);
            for &id in base_ids {
                body.u64(id);
            }
        }
        WalRecord::Insert { id, graph } => {
            body.u8(KIND_INSERT);
            body.u64(*id);
            encode_graph(&mut body, graph);
        }
        WalRecord::Remove { id } => {
            body.u8(KIND_REMOVE);
            body.u64(*id);
        }
    }
    encode_frame(&body.into_bytes())
}

/// Decodes one record body (everything after the frame header).
fn decode_body(offset: usize, body: &[u8]) -> StoreResult<(u64, WalRecord)> {
    let corrupt = |r: &Reader<'_>, reason: String| StoreError::CorruptAt {
        offset: (offset + FRAME_HEADER + r.position()) as u64,
        reason,
    };
    let mut r = Reader::new(body);
    let seq = r.u64("wal sequence").map_err(|_| {
        corrupt(
            &Reader::new(body),
            "record body too short for a sequence".into(),
        )
    })?;
    let kind = r
        .u8("wal kind")
        .map_err(|_| corrupt(&r, "record body too short for a kind".into()))?;
    let record = match kind {
        KIND_CHECKPOINT => {
            let generation = r.u64("checkpoint generation")?;
            let next_id = r.u64("checkpoint next id")?;
            let count = r.count(8, "checkpoint id count")?;
            let mut base_ids = Vec::with_capacity(count);
            for _ in 0..count {
                base_ids.push(r.u64("checkpoint base id")?);
            }
            WalRecord::Checkpoint {
                generation,
                next_id,
                base_ids,
            }
        }
        KIND_INSERT => {
            let id = r.u64("insert id")?;
            let graph = decode_graph(&mut r)?;
            WalRecord::Insert { id, graph }
        }
        KIND_REMOVE => WalRecord::Remove {
            id: r.u64("remove id")?,
        },
        other => return Err(corrupt(&r, format!("unknown record kind {other}"))),
    };
    if !r.is_exhausted() {
        return Err(corrupt(
            &r,
            format!("{} trailing bytes after the record payload", r.remaining()),
        ));
    }
    Ok((seq, record))
}

/// Whether any intact frame (valid header check, fully present body with a
/// matching checksum, and a sequence number at or past `min_seq`) starts at
/// or after `from`. Used only on the corrupt path, to decide whether a
/// damaged frame header is plausibly the interrupted final write (nothing
/// intact follows → torn) or mid-log corruption (truncating would lose the
/// intact records after it).
fn intact_frame_follows(bytes: &[u8], from: usize, min_seq: u64) -> bool {
    let mut q = from;
    while q + FRAME_HEADER <= bytes.len() {
        let rest = &bytes[q..];
        let head_check = u32::from_le_bytes(rest[12..FRAME_HEADER].try_into().expect("4 bytes"));
        if fnv1a64(&rest[..FRAME_HEADER - 4]) as u32 == head_check {
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            if rest.len() - FRAME_HEADER >= len && len >= 9 {
                let body = &rest[FRAME_HEADER..FRAME_HEADER + len];
                if fnv1a64(body) == checksum {
                    let seq = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
                    if seq >= min_seq {
                        return true;
                    }
                }
            }
        }
        q += 1;
    }
    false
}

/// The result of scanning a log file.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Decoded `(sequence, record)` pairs of the valid prefix, in order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the valid prefix — the caller truncates the file to
    /// this when `torn_bytes > 0`.
    pub valid_len: usize,
    /// Bytes dropped as a torn tail (0 when the file ended cleanly).
    pub torn_bytes: usize,
}

impl WalReplay {
    /// The sequence number the next appended record should carry.
    pub fn next_seq(&self) -> u64 {
        self.records.last().map(|&(seq, _)| seq + 1).unwrap_or(1)
    }
}

/// Scans a log image: decodes the valid record prefix, drops a torn tail,
/// and rejects mid-log corruption.
///
/// # Errors
/// [`StoreError::CorruptAt`] (with the byte offset) when a record *before*
/// the last one fails its checksum, decodes to garbage, or breaks the
/// sequence — damage inside the synced region that truncation must not
/// paper over.
pub fn decode_wal(bytes: &[u8]) -> StoreResult<WalReplay> {
    let mut replay = WalReplay::default();
    let mut pos = 0usize;
    let mut expected_seq: Option<u64> = None;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        let torn = |replay: &mut WalReplay| {
            replay.valid_len = pos;
            replay.torn_bytes = bytes.len() - pos;
        };
        if rest.len() < FRAME_HEADER {
            torn(&mut replay);
            return Ok(replay);
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let head_check = u32::from_le_bytes(rest[12..FRAME_HEADER].try_into().expect("4 bytes"));
        if fnv1a64(&rest[..FRAME_HEADER - 4]) as u32 != head_check {
            // The header itself is damaged, so the length cannot be
            // trusted. It is a torn final write only when nothing intact
            // follows; an intact record after it means this damage sits
            // inside the synced region and truncation would lose
            // acknowledged data.
            if intact_frame_follows(bytes, pos + 1, expected_seq.unwrap_or(0)) {
                return Err(StoreError::CorruptAt {
                    offset: pos as u64,
                    reason: "wal frame header check failed before an intact record".into(),
                });
            }
            torn(&mut replay);
            return Ok(replay);
        }
        if rest.len() - FRAME_HEADER < len {
            // The header is intact, so the length is real and the body
            // write never completed: the interrupted final write.
            torn(&mut replay);
            return Ok(replay);
        }
        let body = &rest[FRAME_HEADER..FRAME_HEADER + len];
        let is_last = pos + FRAME_HEADER + len == bytes.len();
        if fnv1a64(body) != checksum {
            if is_last {
                // A half-written (or garbage-filled) final record: torn.
                torn(&mut replay);
                return Ok(replay);
            }
            return Err(StoreError::CorruptAt {
                offset: pos as u64,
                reason: "wal record checksum mismatch before the last record".into(),
            });
        }
        // The checksum matched, so decoding failures here are not torn
        // writes — they are corruption (or a buggy writer) and typed.
        let (seq, record) = decode_body(pos, body)?;
        if let Some(expected) = expected_seq {
            if seq != expected {
                return Err(StoreError::CorruptAt {
                    offset: pos as u64,
                    reason: format!("wal sequence jumped to {seq}, expected {expected}"),
                });
            }
        }
        expected_seq = Some(seq + 1);
        replay.records.push((seq, record));
        pos += FRAME_HEADER + len;
        replay.valid_len = pos;
    }
    Ok(replay)
}

/// The append side of the log: tracks the file path, the next sequence
/// number and the current byte length; every append goes through the
/// [`Vfs`], optionally synced before the mutation is acknowledged.
#[derive(Debug, Clone)]
pub struct WalWriter {
    path: PathBuf,
    next_seq: u64,
    bytes: u64,
    poisoned: bool,
}

impl WalWriter {
    /// A writer positioned at the end of an existing (already scanned) log.
    pub fn new(path: PathBuf, next_seq: u64, bytes: u64) -> Self {
        WalWriter {
            path,
            next_seq,
            bytes,
            poisoned: false,
        }
    }

    /// Whether an earlier failed append sealed this writer (see
    /// [`WalWriter::append`]).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// The log file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current log length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends one record; with `sync` the record is made durable before
    /// returning (the sync-on-ack discipline). Returns the record's
    /// sequence number.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the append or sync fails — the mutation must
    /// not be acknowledged, and the writer is **poisoned**: the physical
    /// file may now hold torn bytes the byte counter does not account for
    /// (a partial `write(2)`, ENOSPC, …), so accepting further appends
    /// would land records *after* the garbage and turn a recoverable torn
    /// tail into unrecoverable mid-log corruption. Every later append (or
    /// sync) fails with a typed error; reopening the database re-scans the
    /// physical log and recovers.
    pub fn append<V: Vfs>(&mut self, vfs: &V, record: &WalRecord, sync: bool) -> StoreResult<u64> {
        self.check_poisoned()?;
        let encoded = encode_record(self.next_seq, record);
        let result = vfs.append(&self.path, &encoded).and_then(|()| {
            if sync {
                vfs.sync(&self.path)
            } else {
                Ok(())
            }
        });
        if let Err(e) = result {
            self.poisoned = true;
            return Err(e);
        }
        if gbd_telemetry::metrics_enabled() {
            let m = crate::obs::store_metrics();
            m.wal_appends.inc();
            m.wal_appended_bytes.add(encoded.len() as u64);
            if sync {
                m.wal_fsyncs.inc();
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.bytes += encoded.len() as u64;
        Ok(seq)
    }

    /// Syncs the log file (for batched acknowledgment regimes where
    /// individual appends skip the per-record sync).
    ///
    /// # Errors
    /// [`StoreError::Io`] when the sync fails, or when the writer was
    /// poisoned by an earlier failed append (syncing would make the torn
    /// bytes durable while the writer still cannot continue past them).
    pub fn sync<V: Vfs>(&self, vfs: &V) -> StoreResult<()> {
        self.check_poisoned()?;
        vfs.sync(&self.path)?;
        if gbd_telemetry::metrics_enabled() {
            crate::obs::store_metrics().wal_fsyncs.inc();
        }
        Ok(())
    }

    fn check_poisoned(&self) -> StoreResult<()> {
        if self.poisoned {
            return Err(StoreError::Io {
                path: self.path.display().to_string(),
                message: "wal writer poisoned by an earlier failed append; \
                          reopen the database to recover"
                    .into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultSchedule, FaultVfs};
    use gbd_graph::{GeneratorConfig, LabelAlphabets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        GeneratorConfig::new(7, 2.0)
            .with_alphabets(LabelAlphabets::new(4, 2))
            .generate_many(1, &mut rng)
            .unwrap()
            .pop()
            .unwrap()
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Checkpoint {
                generation: 1,
                next_id: 3,
                base_ids: vec![0, 1, 2],
            },
            WalRecord::Insert {
                id: 3,
                graph: sample_graph(1),
            },
            WalRecord::Remove { id: 1 },
            WalRecord::Insert {
                id: 4,
                graph: sample_graph(2),
            },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (i, record) in records.iter().enumerate() {
            bytes.extend(encode_record(1 + i as u64, record));
        }
        bytes
    }

    #[test]
    fn records_round_trip_in_sequence() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let replay = decode_wal(&bytes).unwrap();
        assert_eq!(replay.valid_len, bytes.len());
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.next_seq(), 5);
        assert_eq!(replay.records.len(), records.len());
        for ((seq, got), (i, expected)) in replay.records.iter().zip(records.iter().enumerate()) {
            assert_eq!(*seq, 1 + i as u64);
            match (got, expected) {
                (WalRecord::Remove { id: a }, WalRecord::Remove { id: b }) => assert_eq!(a, b),
                (
                    WalRecord::Checkpoint {
                        generation,
                        next_id,
                        base_ids,
                    },
                    WalRecord::Checkpoint {
                        generation: g2,
                        next_id: n2,
                        base_ids: b2,
                    },
                ) => {
                    assert_eq!(generation, g2);
                    assert_eq!(next_id, n2);
                    assert_eq!(base_ids, b2);
                }
                (
                    WalRecord::Insert { id: a, graph: ga },
                    WalRecord::Insert { id: b, graph: gb },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(ga.vertex_count(), gb.vertex_count());
                    assert_eq!(ga.vertex_labels(), gb.vertex_labels());
                    assert_eq!(
                        ga.edges().collect::<Vec<_>>(),
                        gb.edges().collect::<Vec<_>>()
                    );
                }
                _ => panic!("record kinds diverged"),
            }
        }
    }

    #[test]
    fn empty_log_is_a_clean_empty_replay() {
        let replay = decode_wal(&[]).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.next_seq(), 1);
        assert_eq!(replay.valid_len, 0);
        assert_eq!(replay.torn_bytes, 0);
    }

    /// Truncating at every byte inside the final record is a torn tail: the
    /// valid prefix survives, nothing errors, nothing panics.
    #[test]
    fn every_truncation_of_the_tail_record_is_dropped_cleanly() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let third = encode_all(&records[..3]).len();
        for len in third..bytes.len() {
            let replay = decode_wal(&bytes[..len])
                .unwrap_or_else(|e| panic!("truncation at {len} must be torn, got {e}"));
            assert_eq!(replay.records.len(), 3, "prefix survives at {len}");
            assert_eq!(replay.valid_len, third);
            assert_eq!(replay.torn_bytes, len - third);
        }
    }

    /// A checksum failure before the last record is mid-log corruption —
    /// typed, with the offset of the damaged record.
    #[test]
    fn mid_log_corruption_is_rejected_with_an_offset() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let first = encode_all(&records[..1]).len();
        let second = encode_all(&records[..2]).len();
        // Flip a payload byte of record 2 (safely inside its body).
        let mut copy = bytes.clone();
        copy[first + FRAME_HEADER + 9] ^= 0x10;
        match decode_wal(&copy) {
            Err(StoreError::CorruptAt { offset, reason }) => {
                assert_eq!(offset, first as u64, "offset names the damaged record");
                assert!(reason.contains("checksum"));
            }
            other => panic!("expected CorruptAt, got {other:?}"),
        }
        // The same flip in the *last* record is a torn tail instead.
        let mut copy = bytes.clone();
        copy[second + FRAME_HEADER + 9] ^= 0x10;
        let last_start = encode_all(&records[..3]).len();
        let mut copy2 = bytes.clone();
        copy2[last_start + FRAME_HEADER + 9] ^= 0x10;
        let replay = decode_wal(&copy2).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert!(replay.torn_bytes > 0);
        drop(copy);
    }

    #[test]
    fn sequence_jumps_are_rejected() {
        let mut bytes = encode_record(
            1,
            &WalRecord::Checkpoint {
                generation: 1,
                next_id: 0,
                base_ids: vec![],
            },
        );
        let second_offset = bytes.len();
        bytes.extend(encode_record(5, &WalRecord::Remove { id: 0 }));
        // Something valid after it, so the jump is not "the last record".
        bytes.extend(encode_record(6, &WalRecord::Remove { id: 1 }));
        match decode_wal(&bytes) {
            Err(StoreError::CorruptAt { offset, reason }) => {
                assert_eq!(offset, second_offset as u64);
                assert!(reason.contains("sequence"));
            }
            other => panic!("expected CorruptAt, got {other:?}"),
        }
    }

    #[test]
    fn unknown_kinds_and_trailing_payload_bytes_are_corrupt() {
        // Hand-build a record with kind 9.
        let mut body = Writer::new();
        body.u64(1);
        body.u8(9);
        // Append a valid record so the bad one is not "the last".
        let mut all = encode_frame(&body.into_bytes());
        all.extend(encode_record(2, &WalRecord::Remove { id: 0 }));
        assert!(matches!(
            decode_wal(&all),
            Err(StoreError::CorruptAt { .. })
        ));

        // A remove with trailing junk in its (checksummed) body.
        let mut body = Writer::new();
        body.u64(1);
        body.u8(KIND_REMOVE);
        body.u64(7);
        body.u8(0xEE);
        let mut all = encode_frame(&body.into_bytes());
        all.extend(encode_record(2, &WalRecord::Remove { id: 0 }));
        assert!(matches!(
            decode_wal(&all),
            Err(StoreError::CorruptAt { .. })
        ));
    }

    /// Every single-byte flip over a multi-record log is classified
    /// exactly: damage anywhere before the final record — header *or*
    /// body, the length field included — is mid-log corruption (a typed
    /// error, never a silent truncation of acknowledged records), and
    /// damage inside the final record is a torn tail that drops only that
    /// record.
    #[test]
    fn every_bit_flip_is_corrupt_before_the_last_record_and_torn_inside_it() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let last_start = encode_all(&records[..3]).len();
        for position in 0..bytes.len() {
            for bit in 0..8 {
                let mut copy = bytes.clone();
                copy[position] ^= 1 << bit;
                if position < last_start {
                    assert!(
                        matches!(
                            decode_wal(&copy),
                            Err(StoreError::CorruptAt { .. }) | Err(StoreError::Corrupt(_))
                        ),
                        "flip {bit}@{position} inside the synced region must be typed corruption"
                    );
                } else {
                    let replay = decode_wal(&copy).unwrap_or_else(|e| {
                        panic!("flip {bit}@{position} in the final record must be torn, got {e}")
                    });
                    assert_eq!(replay.records.len(), 3, "flip {bit}@{position}");
                    assert_eq!(replay.valid_len, last_start, "flip {bit}@{position}");
                    assert!(replay.torn_bytes > 0, "flip {bit}@{position}");
                }
            }
        }
    }

    /// A failed append (torn bytes may be on disk) seals the writer: no
    /// further append or sync is accepted, so new records can never land
    /// after unaccounted garbage and corrupt the log mid-stream.
    #[test]
    fn failed_appends_poison_the_writer() {
        let vfs = FaultVfs::new();
        let path = PathBuf::from("wal/poison.log");
        let mut writer = WalWriter::new(path.clone(), 1, 0);
        writer
            .append(&vfs, &WalRecord::Remove { id: 1 }, true)
            .unwrap();
        let bytes_before = writer.bytes();
        // Crash mid-append: part of the record reaches the file.
        vfs.arm(FaultSchedule::crash_after(5));
        assert!(writer
            .append(&vfs, &WalRecord::Remove { id: 2 }, true)
            .is_err());
        assert!(writer.poisoned());
        assert_eq!(writer.bytes(), bytes_before, "counter unchanged");
        assert!(
            vfs.visible_len(&path).unwrap() > bytes_before as usize,
            "the file really does hold torn bytes past the counter"
        );
        // The fault clears (transient error), but the writer stays sealed.
        vfs.arm(FaultSchedule::default());
        assert!(matches!(
            writer.append(&vfs, &WalRecord::Remove { id: 3 }, true),
            Err(StoreError::Io { message, .. }) if message.contains("poisoned")
        ));
        assert!(writer.sync(&vfs).is_err());
        // Rescanning the physical file recovers the clean prefix.
        let replay = decode_wal(&vfs.read(&path).unwrap()).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.valid_len, bytes_before as usize);
    }

    #[test]
    fn writer_appends_sync_and_survive_power_loss() {
        let vfs = FaultVfs::new();
        let path = PathBuf::from("wal/test.log");
        let mut writer = WalWriter::new(path.clone(), 1, 0);
        writer
            .append(
                &vfs,
                &WalRecord::Checkpoint {
                    generation: 1,
                    next_id: 0,
                    base_ids: vec![],
                },
                true,
            )
            .unwrap();
        writer
            .append(&vfs, &WalRecord::Remove { id: 9 }, true)
            .unwrap();
        // A third record appended but never synced: lost on power loss.
        writer
            .append(&vfs, &WalRecord::Remove { id: 10 }, false)
            .unwrap();
        assert_eq!(writer.next_seq(), 4);
        vfs.power_cycle();
        let replay = decode_wal(&vfs.read(&path).unwrap()).unwrap();
        assert_eq!(replay.records.len(), 2, "the unsynced record is gone");
        assert_eq!(replay.next_seq(), 3);
    }
}
