//! The snapshot file: a persisted [`GraphDatabase`].
//!
//! # Layout
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header   magic "GBDSNAP\0" · version u32 · section count u32 │
//! │          payload length u64 · payload FNV-1a/64 u64          │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payload  7 sections, each: tag u32 · byte length u64 · body  │
//! │   1 VOCABULARY   label-id → string names                     │
//! │   2 ALPHABETS    |LV|, |LE| of the probabilistic model       │
//! │   3 GRAPHS       names, vertex labels, canonical edge lists  │
//! │   4 CATALOG      interned branches in id order               │
//! │   5 ARENA        flat branch runs + per-graph spans          │
//! │   6 AGGREGATES   sizes, buckets, run counts, distinct sizes  │
//! │   7 POSTINGS     CSR inverted branch index                   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Loading never re-derives what the offline stage already paid for: the
//! catalog, aggregates and CSR postings come straight from their sections,
//! and the per-graph branch multisets are re-expanded from the catalog
//! (cheap clones) instead of re-extracted from the graphs. The three
//! integrity layers are the header checksum (bit rot, truncation), the
//! bounds-checked section decoders (structure), and
//! [`GraphDatabase::from_parts`] (cross-structure invariants) — every
//! failure is a typed [`StoreError`].

use std::path::Path;

use gbd_graph::{Branch, BranchRun, Graph, Label, LabelAlphabets, Vocabulary};
use gbda_core::{DatabaseParts, GraphDatabase, Posting};

use crate::error::{StoreError, StoreResult};
use crate::format::{fnv1a64, Reader, Writer, MAGIC, VERSION};
use crate::vfs::{StdVfs, Vfs};

/// Section tags, in file order.
const SECTION_VOCABULARY: u32 = 1;
const SECTION_ALPHABETS: u32 = 2;
const SECTION_GRAPHS: u32 = 3;
const SECTION_CATALOG: u32 = 4;
const SECTION_ARENA: u32 = 5;
const SECTION_AGGREGATES: u32 = 6;
const SECTION_POSTINGS: u32 = 7;

const SECTIONS: [u32; 7] = [
    SECTION_VOCABULARY,
    SECTION_ALPHABETS,
    SECTION_GRAPHS,
    SECTION_CATALOG,
    SECTION_ARENA,
    SECTION_AGGREGATES,
    SECTION_POSTINGS,
];

/// An in-memory snapshot: the serialisable parts of a [`GraphDatabase`]
/// plus the optional label vocabulary of its datasets.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) parts: DatabaseParts,
    vocabulary: Vocabulary,
}

impl Snapshot {
    /// Captures a database (with an empty vocabulary — label ids only).
    pub fn from_database(database: &GraphDatabase) -> Self {
        Snapshot {
            parts: database.to_parts(),
            vocabulary: Vocabulary::new(),
        }
    }

    /// Captures a database together with the vocabulary that maps its label
    /// ids back to strings.
    pub fn from_database_with_vocabulary(database: &GraphDatabase, vocabulary: Vocabulary) -> Self {
        Snapshot {
            parts: database.to_parts(),
            vocabulary,
        }
    }

    /// Number of graphs captured.
    pub fn graph_count(&self) -> usize {
        self.parts.graphs.len()
    }

    /// The label vocabulary carried alongside the database.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Rebuilds the database (validating every cross-structure invariant)
    /// and hands back the vocabulary.
    ///
    /// # Errors
    /// [`StoreError::InvalidDatabase`] when the decoded sections do not
    /// assemble into a consistent database.
    pub fn into_database(self) -> StoreResult<(GraphDatabase, Vocabulary)> {
        let database = GraphDatabase::from_parts(self.parts)?;
        Ok((database, self.vocabulary))
    }

    /// Serialises the snapshot to its binary file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Writer::new();
        for &tag in &SECTIONS {
            let mut body = Writer::new();
            match tag {
                SECTION_VOCABULARY => encode_vocabulary(&mut body, &self.vocabulary),
                SECTION_ALPHABETS => encode_alphabets(&mut body, self.parts.alphabets),
                SECTION_GRAPHS => encode_graphs(&mut body, &self.parts.graphs),
                SECTION_CATALOG => encode_catalog(&mut body, &self.parts.branches),
                SECTION_ARENA => encode_arena(&mut body, &self.parts.arena, &self.parts.spans),
                SECTION_AGGREGATES => encode_aggregates(&mut body, &self.parts),
                SECTION_POSTINGS => {
                    encode_postings(&mut body, &self.parts.posting_offsets, &self.parts.postings)
                }
                _ => unreachable!("SECTIONS lists every tag"),
            }
            payload.u32(tag);
            payload.u64(body.len() as u64);
            payload.bytes(&body.into_bytes());
        }
        let payload = payload.into_bytes();
        let mut out = Writer::new();
        out.bytes(&MAGIC);
        out.u32(VERSION);
        out.u32(SECTIONS.len() as u32);
        out.u64(payload.len() as u64);
        out.u64(fnv1a64(&payload));
        out.bytes(&payload);
        out.into_bytes()
    }

    /// Decodes a snapshot from its binary file format.
    ///
    /// # Errors
    /// A typed [`StoreError`] for every failure mode: foreign files, future
    /// versions, truncation, checksum mismatches, malformed sections.
    pub fn from_bytes(bytes: &[u8]) -> StoreResult<Self> {
        let mut reader = Reader::new(bytes);
        if reader
            .take(MAGIC.len(), "magic")
            .map_err(|_| StoreError::BadMagic)?
            != MAGIC
        {
            return Err(StoreError::BadMagic);
        }
        let version = reader.u32("version")?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let section_count = reader.u32("section count")?;
        if section_count as usize != SECTIONS.len() {
            return Err(StoreError::Corrupt(format!(
                "expected {} sections, header says {section_count}",
                SECTIONS.len()
            )));
        }
        let payload_len = reader.u64("payload length")?;
        let expected_hash = reader.u64("payload checksum")?;
        if payload_len as usize != reader.remaining() {
            return Err(StoreError::Truncated { context: "payload" });
        }
        let payload = reader.take(payload_len as usize, "payload")?;
        let actual_hash = fnv1a64(payload);
        if actual_hash != expected_hash {
            return Err(StoreError::ChecksumMismatch {
                expected: expected_hash,
                actual: actual_hash,
            });
        }

        let mut reader = Reader::new(payload);
        let mut sections: Vec<Reader<'_>> = Vec::with_capacity(SECTIONS.len());
        for &expected_tag in &SECTIONS {
            let tag = reader.u32("section tag")?;
            if tag != expected_tag {
                return Err(StoreError::Corrupt(format!(
                    "expected section {expected_tag}, found {tag}"
                )));
            }
            let len = reader.count(1, "section length")?;
            sections.push(reader.sub_reader(len, "section body")?);
        }
        if !reader.is_exhausted() {
            return Err(StoreError::Corrupt("trailing bytes after sections".into()));
        }
        let mut sections = sections.into_iter();
        let mut next = || sections.next().expect("SECTIONS.len() sub-readers");

        let vocabulary = decode_vocabulary(&mut next())?;
        let alphabets = decode_alphabets(&mut next())?;
        let graphs = decode_graphs(&mut next())?;
        let branches = decode_catalog(&mut next())?;
        let (arena, spans) = decode_arena(&mut next())?;
        let aggregates = decode_aggregates(&mut next())?;
        let (posting_offsets, postings) = decode_postings(&mut next())?;

        Ok(Snapshot {
            parts: DatabaseParts {
                graphs,
                branches,
                arena,
                spans,
                alphabets,
                distinct_sizes: aggregates.distinct_sizes,
                sizes: aggregates.sizes,
                buckets: aggregates.buckets,
                run_counts: aggregates.run_counts,
                max_run_counts: aggregates.max_run_counts,
                posting_offsets,
                postings,
            },
            vocabulary,
        })
    }

    /// Writes the snapshot to a file, atomically: the bytes go to a
    /// temporary sibling first (synced to disk), which is then renamed over
    /// `path` and made durable by syncing the parent directory — a crash
    /// mid-save can never destroy an existing good snapshot, and a
    /// completed save survives power loss (a rename alone is not durable on
    /// POSIX). Equivalent to [`Self::save_with`] over [`StdVfs`].
    ///
    /// # Errors
    /// [`StoreError::Io`] when the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> StoreResult<()> {
        self.save_with(&StdVfs, path)
    }

    /// [`Self::save`] through an explicit [`Vfs`] — the staging write, file
    /// sync, rename and directory sync all go through `vfs`, so the
    /// fault-injection harness covers every step of the atomic save.
    ///
    /// # Errors
    /// [`StoreError::Io`] when any step fails; the staging file is cleaned
    /// up best-effort.
    pub fn save_with<V: Vfs>(&self, vfs: &V, path: impl AsRef<Path>) -> StoreResult<()> {
        let path = path.as_ref();
        let mut file_name = path.file_name().unwrap_or_default().to_os_string();
        file_name.push(".tmp");
        let staging = path.with_file_name(file_name);
        let result = (|| {
            vfs.write(&staging, &self.to_bytes())?;
            vfs.sync(&staging)?;
            vfs.rename(&staging, path)?;
            vfs.sync_dir(&crate::vfs::parent_dir(path))
        })();
        if result.is_err() {
            vfs.remove(&staging).ok();
        } else if gbd_telemetry::metrics_enabled() {
            crate::obs::store_metrics().snapshot_saves.inc();
        }
        result
    }

    /// Reads and decodes a snapshot file.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the file cannot be read, otherwise any decode
    /// error of [`Self::from_bytes`].
    pub fn load(path: impl AsRef<Path>) -> StoreResult<Self> {
        Snapshot::load_with(&StdVfs, path)
    }

    /// [`Self::load`] through an explicit [`Vfs`].
    ///
    /// # Errors
    /// [`StoreError::Io`] when the file cannot be read, otherwise any decode
    /// error of [`Self::from_bytes`].
    pub fn load_with<V: Vfs>(vfs: &V, path: impl AsRef<Path>) -> StoreResult<Self> {
        let snapshot = Snapshot::from_bytes(&vfs.read(path.as_ref())?)?;
        if gbd_telemetry::metrics_enabled() {
            crate::obs::store_metrics().snapshot_loads.inc();
        }
        Ok(snapshot)
    }
}

/// One-call save: capture a database (and vocabulary) and write the file.
pub fn save_database(
    database: &GraphDatabase,
    vocabulary: &Vocabulary,
    path: impl AsRef<Path>,
) -> StoreResult<()> {
    Snapshot::from_database_with_vocabulary(database, vocabulary.clone()).save(path)
}

/// One-call load: read a snapshot file and rebuild the database it captured
/// — without recomputing the catalog, the aggregates or the postings.
pub fn load_database(path: impl AsRef<Path>) -> StoreResult<(GraphDatabase, Vocabulary)> {
    Snapshot::load(path)?.into_database()
}

fn encode_vocabulary(w: &mut Writer, vocabulary: &Vocabulary) {
    w.u64(vocabulary.len() as u64);
    for (_, name) in vocabulary.iter() {
        w.str(name);
    }
}

fn decode_vocabulary(r: &mut Reader<'_>) -> StoreResult<Vocabulary> {
    let count = r.count(8, "vocabulary count")?;
    let mut vocabulary = Vocabulary::new();
    for _ in 0..count {
        vocabulary.intern(&r.str("vocabulary name")?);
    }
    if vocabulary.len() != count {
        return Err(StoreError::Corrupt("duplicate vocabulary names".into()));
    }
    exhausted(r, "vocabulary")?;
    Ok(vocabulary)
}

fn encode_alphabets(w: &mut Writer, alphabets: LabelAlphabets) {
    w.u64(alphabets.vertex_labels as u64);
    w.u64(alphabets.edge_labels as u64);
}

fn decode_alphabets(r: &mut Reader<'_>) -> StoreResult<LabelAlphabets> {
    let vertex_labels = r.u64("vertex alphabet")?;
    let edge_labels = r.u64("edge alphabet")?;
    exhausted(r, "alphabets")?;
    let to_usize = |v: u64, what: &str| {
        usize::try_from(v).map_err(|_| StoreError::Corrupt(format!("{what} alphabet overflows")))
    };
    Ok(LabelAlphabets::new(
        to_usize(vertex_labels, "vertex")?,
        to_usize(edge_labels, "edge")?,
    ))
}

/// Encodes one graph — shared between the GRAPHS section and the
/// write-ahead log's insert records.
pub(crate) fn encode_graph(w: &mut Writer, graph: &Graph) {
    match graph.name() {
        Some(name) => {
            w.u8(1);
            w.str(name);
        }
        None => w.u8(0),
    }
    w.u64(graph.vertex_count() as u64);
    for &label in graph.vertex_labels() {
        w.u32(label.id());
    }
    w.u64(graph.edge_count() as u64);
    for (key, label) in graph.edges() {
        w.u32(key.u.raw());
        w.u32(key.v.raw());
        w.u32(label.id());
    }
}

/// Decodes one graph, validating it structurally via [`Graph::from_parts`].
pub(crate) fn decode_graph(r: &mut Reader<'_>) -> StoreResult<Graph> {
    let name = match r.u8("graph name flag")? {
        0 => None,
        1 => Some(r.str("graph name")?),
        other => {
            return Err(StoreError::Corrupt(format!("graph name flag {other}")));
        }
    };
    let n = r.count(4, "vertex count")?;
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        labels.push(Label::new(r.u32("vertex label")?));
    }
    let m = r.count(12, "edge count")?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = r.u32("edge endpoint")?;
        let v = r.u32("edge endpoint")?;
        let label = Label::new(r.u32("edge label")?);
        edges.push((u, v, label));
    }
    Graph::from_parts(name, labels, &edges).map_err(|e| StoreError::Corrupt(format!("graph: {e}")))
}

fn encode_graphs(w: &mut Writer, graphs: &[Graph]) {
    w.u64(graphs.len() as u64);
    for graph in graphs {
        encode_graph(w, graph);
    }
}

fn decode_graphs(r: &mut Reader<'_>) -> StoreResult<Vec<Graph>> {
    let count = r.count(1, "graph count")?;
    let mut graphs = Vec::with_capacity(count);
    for _ in 0..count {
        graphs.push(decode_graph(r)?);
    }
    exhausted(r, "graphs")?;
    Ok(graphs)
}

fn encode_catalog(w: &mut Writer, branches: &[Branch]) {
    w.u64(branches.len() as u64);
    for branch in branches {
        w.u32(branch.vertex_label().id());
        w.u64(branch.edge_labels().len() as u64);
        for &label in branch.edge_labels() {
            w.u32(label.id());
        }
    }
}

fn decode_catalog(r: &mut Reader<'_>) -> StoreResult<Vec<Branch>> {
    let count = r.count(12, "catalog count")?;
    let mut branches = Vec::with_capacity(count);
    for _ in 0..count {
        let vertex_label = Label::new(r.u32("branch vertex label")?);
        let degree = r.count(4, "branch degree")?;
        let mut edge_labels = Vec::with_capacity(degree);
        for _ in 0..degree {
            edge_labels.push(Label::new(r.u32("branch edge label")?));
        }
        // Branch::new re-sorts, so an unsorted (hand-edited) list still
        // produces a canonical branch.
        branches.push(Branch::new(vertex_label, edge_labels));
    }
    exhausted(r, "catalog")?;
    Ok(branches)
}

fn encode_arena(w: &mut Writer, arena: &[BranchRun], spans: &[(u32, u32)]) {
    w.u64(arena.len() as u64);
    for run in arena {
        w.u32(run.id);
        w.u32(run.count);
    }
    w.u64(spans.len() as u64);
    for &(start, len) in spans {
        w.u32(start);
        w.u32(len);
    }
}

/// The decoded arena section: runs plus per-graph `(start, len)` spans.
type ArenaSection = (Vec<BranchRun>, Vec<(u32, u32)>);

fn decode_arena(r: &mut Reader<'_>) -> StoreResult<ArenaSection> {
    let runs = r.count(8, "arena run count")?;
    let mut arena = Vec::with_capacity(runs);
    for _ in 0..runs {
        let id = r.u32("run id")?;
        let count = r.u32("run count")?;
        arena.push(BranchRun { id, count });
    }
    let span_count = r.count(8, "span count")?;
    let mut spans = Vec::with_capacity(span_count);
    for _ in 0..span_count {
        spans.push((r.u32("span start")?, r.u32("span length")?));
    }
    exhausted(r, "arena")?;
    Ok((arena, spans))
}

/// The decoded per-graph aggregate arrays.
struct Aggregates {
    sizes: Vec<u32>,
    buckets: Vec<u32>,
    run_counts: Vec<u32>,
    max_run_counts: Vec<u32>,
    distinct_sizes: Vec<usize>,
}

fn encode_aggregates(w: &mut Writer, parts: &DatabaseParts) {
    w.u64(parts.sizes.len() as u64);
    for array in [
        &parts.sizes,
        &parts.buckets,
        &parts.run_counts,
        &parts.max_run_counts,
    ] {
        for &value in array.iter() {
            w.u32(value);
        }
    }
    w.u64(parts.distinct_sizes.len() as u64);
    for &size in &parts.distinct_sizes {
        w.u64(size as u64);
    }
}

fn decode_aggregates(r: &mut Reader<'_>) -> StoreResult<Aggregates> {
    let n = r.count(16, "aggregate count")?;
    let mut read_array = |context: &'static str| -> StoreResult<Vec<u32>> {
        let mut array = Vec::with_capacity(n);
        for _ in 0..n {
            array.push(r.u32(context)?);
        }
        Ok(array)
    };
    let sizes = read_array("sizes")?;
    let buckets = read_array("buckets")?;
    let run_counts = read_array("run counts")?;
    let max_run_counts = read_array("max run counts")?;
    let ds = r.count(8, "distinct size count")?;
    let mut distinct_sizes = Vec::with_capacity(ds);
    for _ in 0..ds {
        let size = r.u64("distinct size")?;
        distinct_sizes.push(
            usize::try_from(size)
                .map_err(|_| StoreError::Corrupt("distinct size overflows".into()))?,
        );
    }
    exhausted(r, "aggregates")?;
    Ok(Aggregates {
        sizes,
        buckets,
        run_counts,
        max_run_counts,
        distinct_sizes,
    })
}

fn encode_postings(w: &mut Writer, offsets: &[u32], postings: &[Posting]) {
    w.u64(offsets.len() as u64);
    for &offset in offsets {
        w.u32(offset);
    }
    w.u64(postings.len() as u64);
    for posting in postings {
        w.u32(posting.graph);
        w.u32(posting.count);
    }
}

fn decode_postings(r: &mut Reader<'_>) -> StoreResult<(Vec<u32>, Vec<Posting>)> {
    let offset_count = r.count(4, "posting offset count")?;
    let mut offsets = Vec::with_capacity(offset_count);
    for _ in 0..offset_count {
        offsets.push(r.u32("posting offset")?);
    }
    let posting_count = r.count(8, "posting count")?;
    let mut postings = Vec::with_capacity(posting_count);
    for _ in 0..posting_count {
        let graph = r.u32("posting graph")?;
        let count = r.u32("posting multiplicity")?;
        postings.push(Posting { graph, count });
    }
    exhausted(r, "postings")?;
    Ok((offsets, postings))
}

/// A section must consume exactly its framed bytes.
fn exhausted(r: &Reader<'_>, section: &str) -> StoreResult<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(StoreError::Corrupt(format!(
            "{section} section has {} trailing bytes",
            r.remaining()
        )))
    }
}
