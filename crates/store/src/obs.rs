//! Telemetry instrumentation of the storage engine: the durability-path
//! metric handles this crate reports into (see the `gbd-telemetry` crate).
//!
//! Everything here follows the same discipline as the query-side
//! instrumentation: handles are registered once on first use, every
//! recording site is gated on [`gbd_telemetry::metrics_enabled`] (a single
//! relaxed atomic load), and nothing is recorded per byte — only per
//! append, per sync, per recovery and per rotation, so the counters cost
//! nothing next to the I/O they describe.

use std::sync::OnceLock;

use gbd_telemetry::{global, Counter, Histogram};

/// Handles of every durability metric, registered once on first use.
pub(crate) struct StoreMetrics {
    /// WAL records appended (checkpoints, inserts, removes).
    pub(crate) wal_appends: Counter,
    /// Encoded WAL bytes appended.
    pub(crate) wal_appended_bytes: Counter,
    /// File syncs issued on the WAL (per-record and batched).
    pub(crate) wal_fsyncs: Counter,
    /// Torn WAL tails truncated in place during recovery.
    pub(crate) wal_torn_truncations: Counter,
    /// WAL records replayed onto the base snapshot during recovery.
    pub(crate) recovery_replayed_records: Counter,
    /// End-to-end recovery (open) latency.
    pub(crate) recovery_replay_seconds: Histogram,
    /// Manifest publications: generation rotations by compaction plus the
    /// initial create.
    pub(crate) manifest_rotations: Counter,
    /// Auto-compaction failures deferred behind an acknowledged mutation.
    pub(crate) auto_compact_errors: Counter,
    /// Snapshot files written (atomic staging + rename saves).
    pub(crate) snapshot_saves: Counter,
    /// Snapshot files read and decoded.
    pub(crate) snapshot_loads: Counter,
}

pub(crate) fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let g = global();
        StoreMetrics {
            wal_appends: g.counter(
                "gbda_wal_appends_total",
                "Records appended to the write-ahead log.",
            ),
            wal_appended_bytes: g.counter(
                "gbda_wal_appended_bytes_total",
                "Encoded bytes appended to the write-ahead log.",
            ),
            wal_fsyncs: g.counter(
                "gbda_wal_fsyncs_total",
                "File syncs issued on the write-ahead log.",
            ),
            wal_torn_truncations: g.counter(
                "gbda_wal_torn_truncations_total",
                "Torn write-ahead-log tails truncated in place during recovery.",
            ),
            recovery_replayed_records: g.counter(
                "gbda_recovery_replayed_records_total",
                "Write-ahead-log records replayed onto the base snapshot during recovery.",
            ),
            recovery_replay_seconds: g.histogram(
                "gbda_recovery_replay_seconds",
                "End-to-end latency of one durable-database recovery (open).",
            ),
            manifest_rotations: g.counter(
                "gbda_manifest_rotations_total",
                "Manifest publications (database creation and compaction rotations).",
            ),
            auto_compact_errors: g.counter(
                "gbda_store_auto_compact_errors_total",
                "Auto-compaction failures deferred behind an acknowledged mutation.",
            ),
            snapshot_saves: g.counter(
                "gbda_snapshot_saves_total",
                "Snapshot files written through the atomic staging save.",
            ),
            snapshot_loads: g.counter(
                "gbda_snapshot_loads_total",
                "Snapshot files read and decoded.",
            ),
        }
    })
}
