//! Crash-safe persistence for the dynamic layer: a
//! [`DynamicDatabase`] paired with a base snapshot generation and a
//! write-ahead log, under a tiny atomically-swapped [`Manifest`].
//!
//! # Lifecycle
//!
//! * [`DurableDatabase::create`] seeds generation 1: snapshot of the base,
//!   a log opened with a synced checkpoint record, then the manifest —
//!   published last, so a half-created directory is simply not a database
//!   yet.
//! * [`DurableDatabase::insert`] / [`DurableDatabase::remove`] follow the
//!   *log-then-apply* discipline: the record is appended (and, with
//!   [`DurabilityConfig::sync_acks`], synced) **before** the in-memory
//!   state changes. An acknowledgment therefore implies the mutation is on
//!   disk.
//! * [`DurableDatabase::open`] loads the manifest's snapshot, truncates a
//!   torn log tail (bytes a crash cut mid-record — never acknowledged, so
//!   safe to drop), replays the surviving records onto the base, and
//!   rejects anything damaged *inside* the synced region with a typed
//!   [`StoreError`] — recovery never panics and never silently drops an
//!   acknowledged mutation.
//! * [`DurableDatabase::compact`] folds tombstones and the delta into a new
//!   snapshot generation beside the live one, starts its log with a synced
//!   checkpoint, then atomically publishes the switch via the manifest.
//!   A crash anywhere leaves a readable database: either the old
//!   generation (whose snapshot + log still replay to the *same* live set —
//!   compaction does not change it) or the new one.
//!
//! # The guarantee
//!
//! After any crash, `open` recovers the state of some **prefix** of the
//! acknowledged mutation history, and when every acknowledgment was synced
//! ([`DurabilityConfig::sync_acks`], the default) that prefix is the whole
//! history. This is exactly what the fault-injection suite
//! (`tests/durability.rs`) proves by crashing at every byte offset of real
//! workloads.

use std::path::{Path, PathBuf};

use gbd_graph::Graph;
use gbda_core::{DurabilityConfig, DynamicDatabase, EngineError, GraphDatabase};

use crate::error::{StoreError, StoreResult};
use crate::manifest::{Manifest, MANIFEST_FILE};
use crate::snapshot::Snapshot;
use crate::vfs::Vfs;
use crate::wal::{decode_wal, WalRecord, WalWriter};

/// A [`DynamicDatabase`] bound to a directory it keeps crash-consistent.
///
/// See the [module docs](self) for the lifecycle and the recovery
/// guarantee. The [`Vfs`] parameter is [`crate::StdVfs`] in production and
/// [`crate::FaultVfs`] under fault injection.
#[derive(Debug)]
pub struct DurableDatabase<V: Vfs> {
    vfs: V,
    dir: PathBuf,
    manifest: Manifest,
    wal: WalWriter,
    database: DynamicDatabase,
    durability: DurabilityConfig,
    /// The error of the **first** failed *auto*-compaction since the last
    /// [`Self::take_auto_compact_error`], held back so the mutation that
    /// triggered it can still be acknowledged (it was already durably
    /// logged). First-error-wins: a repeated failure must not overwrite the
    /// root cause before the caller collects it —
    /// [`Self::auto_compact_failures`] counts the repeats.
    auto_compact_error: Option<StoreError>,
    /// Failed auto-compaction attempts since the last
    /// [`Self::take_auto_compact_error`] (or open/create).
    auto_compact_failures: u64,
}

impl<V: Vfs> DurableDatabase<V> {
    /// Initializes a fresh durable database around `base` in `dir`
    /// (creating the directory) as generation 1.
    ///
    /// # Errors
    /// [`StoreError::Io`] when `dir` already holds a durable database or
    /// any write/sync fails — in which case no manifest was published and
    /// the directory is still not a database.
    pub fn create(
        vfs: V,
        dir: impl Into<PathBuf>,
        base: GraphDatabase,
        durability: DurabilityConfig,
    ) -> StoreResult<Self> {
        let dir = dir.into();
        vfs.create_dir_all(&dir)?;
        if vfs.exists(&dir.join(MANIFEST_FILE)) {
            return Err(StoreError::Io {
                path: dir.display().to_string(),
                message: "a durable database already exists here".into(),
            });
        }
        let manifest = Manifest { generation: 1 };
        Snapshot::from_database(&base).save_with(&vfs, manifest.snapshot_path(&dir))?;
        let database = DynamicDatabase::new(base);
        let wal_path = manifest.wal_path(&dir);
        vfs.write(&wal_path, &[])?;
        let mut wal = WalWriter::new(wal_path, 1, 0);
        wal.append(
            &vfs,
            &WalRecord::Checkpoint {
                generation: manifest.generation,
                next_id: database.next_id(),
                base_ids: database.base_ids().to_vec(),
            },
            true,
        )?;
        // The manifest is published last: its rename + directory sync is
        // the single atomic step that makes the database exist.
        manifest.store(&vfs, &dir)?;
        if gbd_telemetry::metrics_enabled() {
            crate::obs::store_metrics().manifest_rotations.inc();
        }
        Ok(DurableDatabase {
            vfs,
            dir,
            manifest,
            wal,
            database,
            durability,
            auto_compact_error: None,
            auto_compact_failures: 0,
        })
    }

    /// Recovers the database in `dir`: loads the manifest's snapshot
    /// generation, truncates a torn log tail, and replays the log.
    ///
    /// # Errors
    /// [`StoreError::Io`] when files cannot be read, and the typed
    /// corruption errors ([`StoreError::CorruptAt`], [`StoreError::Corrupt`],
    /// [`StoreError::ChecksumMismatch`], …) when the manifest, snapshot or
    /// the synced region of the log is damaged. Never panics on any byte
    /// stream.
    pub fn open(
        vfs: V,
        dir: impl Into<PathBuf>,
        durability: DurabilityConfig,
    ) -> StoreResult<Self> {
        let started = std::time::Instant::now();
        let _span = gbd_telemetry::span!("store.recover");
        let dir = dir.into();
        let manifest = Manifest::load(&vfs, &dir)?;
        let (base, _vocabulary) =
            Snapshot::load_with(&vfs, manifest.snapshot_path(&dir))?.into_database()?;
        let wal_path = manifest.wal_path(&dir);
        let bytes = vfs.read(&wal_path)?;
        let replay = decode_wal(&bytes)?;
        if replay.torn_bytes > 0 {
            // The tail record was cut mid-write by a crash; it was never
            // acknowledged, so dropping it preserves the guarantee. The
            // log is shortened *in place* — never rewritten: an O_TRUNC +
            // rewrite could destroy the already-synced prefix on the
            // durable medium before the rewritten bytes are flushed,
            // losing acknowledged mutations if power fails here. Then the
            // truncation is synced so the next append starts clean.
            vfs.truncate(&wal_path, replay.valid_len as u64)?;
            vfs.sync(&wal_path)?;
            if gbd_telemetry::metrics_enabled() {
                crate::obs::store_metrics().wal_torn_truncations.inc();
            }
        }
        let mut records = replay.records.iter();
        let database = match records.next() {
            Some((
                _,
                WalRecord::Checkpoint {
                    generation,
                    next_id,
                    base_ids,
                },
            )) => {
                if *generation != manifest.generation {
                    return Err(StoreError::CorruptAt {
                        offset: 0,
                        reason: format!(
                            "wal checkpoint is for generation {generation}, manifest says {}",
                            manifest.generation
                        ),
                    });
                }
                DynamicDatabase::with_base_ids(base, base_ids.clone(), *next_id)?
            }
            Some(_) => {
                return Err(StoreError::CorruptAt {
                    offset: 0,
                    reason: "wal does not start with a checkpoint record".into(),
                })
            }
            None => {
                return Err(StoreError::CorruptAt {
                    offset: 0,
                    reason: "wal holds no intact checkpoint record".into(),
                })
            }
        };
        let mut database = database;
        // Replay re-applies historical, already-acknowledged mutations:
        // silence the per-mutation dynamic-layer telemetry so counters are
        // not inflated by history — and so a replay that fails midway
        // (corrupt record) leaves no gauges describing the discarded
        // database object.
        database.set_metrics_quiet(true);
        for (seq, record) in records {
            match record {
                WalRecord::Checkpoint { .. } => {
                    return Err(StoreError::Corrupt(format!(
                        "wal record {seq}: checkpoint in the middle of the log"
                    )))
                }
                WalRecord::Insert { id, graph } => {
                    if database.next_id() != *id {
                        return Err(StoreError::Corrupt(format!(
                            "wal record {seq}: insert of id {id} but replay is at id {}",
                            database.next_id()
                        )));
                    }
                    database.insert(graph.clone());
                }
                WalRecord::Remove { id } => {
                    database.remove(*id).map_err(|_| {
                        StoreError::Corrupt(format!(
                            "wal record {seq}: remove of id {id}, which is not live"
                        ))
                    })?;
                }
            }
        }
        database.set_metrics_quiet(false);
        database.publish_metric_gauges();
        let wal = WalWriter::new(wal_path, replay.next_seq(), replay.valid_len as u64);
        let recovered = DurableDatabase {
            vfs,
            dir,
            manifest,
            wal,
            database,
            durability,
            auto_compact_error: None,
            auto_compact_failures: 0,
        };
        recovered.clean_stale_files();
        if gbd_telemetry::metrics_enabled() {
            let m = crate::obs::store_metrics();
            // The checkpoint is positioning, not a replayed mutation.
            m.recovery_replayed_records
                .add(replay.records.len().saturating_sub(1) as u64);
            m.recovery_replay_seconds
                .record(started.elapsed().as_secs_f64());
        }
        Ok(recovered)
    }

    /// Best-effort removal of files from superseded generations (and
    /// abandoned staging files) — failures are ignored; stale files are
    /// dead weight, not a correctness hazard.
    fn clean_stale_files(&self) {
        let Ok(names) = self.vfs.list(&self.dir) else {
            return;
        };
        let keep_snapshot = Manifest::snapshot_name(self.manifest.generation);
        let keep_wal = Manifest::wal_name(self.manifest.generation);
        let mut removed = false;
        for name in names {
            let stale_generation = (name.starts_with("base-") && name != keep_snapshot)
                || (name.starts_with("wal-") && name != keep_wal);
            let stale_staging = name.ends_with(".tmp");
            if stale_generation || stale_staging {
                removed |= self.vfs.remove(&self.dir.join(&name)).is_ok();
            }
        }
        if removed {
            self.vfs.sync_dir(&self.dir).ok();
        }
    }

    /// The recovered/live in-memory database (scans run against this).
    pub fn database(&self) -> &DynamicDatabase {
        &self.database
    }

    /// The live generation number.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// The directory this database persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current write-ahead-log length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// The durability knobs this handle was opened with.
    pub fn durability(&self) -> DurabilityConfig {
        self.durability
    }

    /// Number of live graphs.
    pub fn len(&self) -> usize {
        self.database.len()
    }

    /// Returns `true` when no graph is live.
    pub fn is_empty(&self) -> bool {
        self.database.is_empty()
    }

    /// Whether `id` refers to a live graph.
    pub fn contains(&self, id: u64) -> bool {
        self.database.contains(id)
    }

    /// Inserts a graph: logs the mutation (synced when
    /// [`DurabilityConfig::sync_acks`] is on), applies it, and returns the
    /// stable id. The returned id is the acknowledgment — once this
    /// returns `Ok`, a synced insert survives any crash.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the log append or sync fails; the in-memory
    /// state is unchanged and the mutation is not acknowledged, and the
    /// write path is sealed (the log may hold torn bytes) — reopen the
    /// database to recover and resume. A failure of the *auto*-compaction
    /// that a successful insert may trigger does **not** surface here —
    /// the mutation is already durable, so the id is returned and the
    /// compaction error is held for [`Self::take_auto_compact_error`].
    pub fn insert(&mut self, graph: Graph) -> StoreResult<u64> {
        let id = self.database.next_id();
        let record = WalRecord::Insert { id, graph };
        self.wal
            .append(&self.vfs, &record, self.durability.sync_acks)?;
        let WalRecord::Insert { graph, .. } = record else {
            unreachable!("record was constructed as an insert")
        };
        let assigned = self.database.insert(graph);
        debug_assert_eq!(assigned, id, "logged id must match the assigned id");
        self.maybe_auto_compact();
        Ok(id)
    }

    /// Removes a live graph by id: logs the tombstone (synced when
    /// [`DurabilityConfig::sync_acks`] is on), then applies it.
    ///
    /// # Errors
    /// [`StoreError::InvalidDatabase`] with
    /// [`EngineError::UnknownGraphId`] when `id` is not live (nothing is
    /// logged), [`StoreError::Io`] when the log append or sync fails — the
    /// mutation is not acknowledged and the write path is sealed; reopen
    /// to recover. As with [`Self::insert`], an auto-compaction failure
    /// after the acknowledged tombstone is deferred, not returned.
    pub fn remove(&mut self, id: u64) -> StoreResult<()> {
        if !self.database.contains(id) {
            return Err(EngineError::UnknownGraphId(id).into());
        }
        self.wal.append(
            &self.vfs,
            &WalRecord::Remove { id },
            self.durability.sync_acks,
        )?;
        self.database
            .remove(id)
            .expect("id was checked live before logging");
        self.maybe_auto_compact();
        Ok(())
    }

    /// Syncs the log, upgrading every previously unsynced acknowledgment to
    /// crash-durable — the batching hook for
    /// [`DurabilityConfig::sync_acks`] `= false` regimes.
    ///
    /// # Errors
    /// [`StoreError::Io`] when the sync fails.
    pub fn sync(&self) -> StoreResult<()> {
        self.wal.sync(&self.vfs)
    }

    /// Runs the size-triggered compaction after an acknowledged mutation.
    /// A failure here must not bubble into the mutation's own result — the
    /// mutation is already durably logged and applied, and surfacing an
    /// `Err` would invite the caller to retry and apply it twice — so the
    /// error is parked for [`Self::take_auto_compact_error`] instead. The
    /// handle stays consistent: a failed rotation leaves the old
    /// generation live, and recovery replays it to the same state.
    fn maybe_auto_compact(&mut self) {
        if let Some(limit) = self.durability.auto_compact_wal_bytes {
            if self.wal.bytes() >= limit {
                if let Err(e) = self.compact() {
                    if gbd_telemetry::metrics_enabled() {
                        crate::obs::store_metrics().auto_compact_errors.inc();
                    }
                    self.auto_compact_failures += 1;
                    // First-error-wins: a second failed rotation before the
                    // caller collects the error must not overwrite the root
                    // cause (the follow-up failure is usually a symptom).
                    if self.auto_compact_error.is_none() {
                        self.auto_compact_error = Some(e);
                    }
                }
            }
        }
    }

    /// Takes the error of the **first** failed automatic compaction since
    /// the last call, if any, and resets [`Self::auto_compact_failures`].
    /// Auto-compaction runs *after* an insert/remove is acknowledged, so
    /// its failures are reported out-of-band here rather than as the
    /// mutation's result (which would wrongly suggest the mutation itself
    /// did not persist). A deferred failure is not fatal: the oversized
    /// log keeps accepting mutations, and the next one retries the
    /// rotation. When several rotations fail back-to-back the first error
    /// is the one preserved — it names the root cause, while the repeats
    /// are usually downstream symptoms; check
    /// [`Self::auto_compact_failures`] *before* taking to learn how many
    /// piled up.
    pub fn take_auto_compact_error(&mut self) -> Option<StoreError> {
        self.auto_compact_failures = 0;
        self.auto_compact_error.take()
    }

    /// Failed auto-compaction attempts since the last
    /// [`Self::take_auto_compact_error`] (or since open/create). More than
    /// one means rotations are failing repeatedly; the held error is the
    /// first of the streak.
    pub fn auto_compact_failures(&self) -> u64 {
        self.auto_compact_failures
    }

    /// Peeks at the held auto-compaction error without consuming it (the
    /// first of the current failure streak, like
    /// [`Self::take_auto_compact_error`] — but repeatable).
    pub fn auto_compact_error(&self) -> Option<&StoreError> {
        self.auto_compact_error.as_ref()
    }

    /// Folds tombstones and the delta segment into snapshot generation
    /// `g + 1` and atomically retires the log. Returns the number of live
    /// graphs.
    ///
    /// The rotation order is: compact in memory → write + sync the new
    /// snapshot → write + sync the new log's checkpoint → publish the new
    /// manifest (staging → sync → rename → dir sync) → best-effort removal
    /// of the old generation's files. A crash before the publish leaves the
    /// old generation live — and because compaction does not change the
    /// live set, ids, or the id counter, the old snapshot + log still
    /// recover exactly the current state.
    ///
    /// # Errors
    /// [`StoreError::Io`] when a write or sync fails. The handle remains
    /// usable and consistent with what a reopen would recover.
    pub fn compact(&mut self) -> StoreResult<usize> {
        let live = self.database.compact();
        let next = Manifest {
            generation: self.manifest.generation + 1,
        };
        Snapshot::from_database(self.database.base())
            .save_with(&self.vfs, next.snapshot_path(&self.dir))?;
        let wal_path = next.wal_path(&self.dir);
        // Truncate any leftover from an earlier failed rotation before
        // appending, so the new log starts clean.
        self.vfs.write(&wal_path, &[])?;
        let mut wal = WalWriter::new(wal_path, self.wal.next_seq(), 0);
        wal.append(
            &self.vfs,
            &WalRecord::Checkpoint {
                generation: next.generation,
                next_id: self.database.next_id(),
                base_ids: self.database.base_ids().to_vec(),
            },
            true,
        )?;
        next.store(&self.vfs, &self.dir)?;
        if gbd_telemetry::metrics_enabled() {
            crate::obs::store_metrics().manifest_rotations.inc();
        }
        self.manifest = next;
        self.wal = wal;
        self.clean_stale_files();
        Ok(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultSchedule, FaultVfs};
    use gbd_graph::{GeneratorConfig, LabelAlphabets};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graphs(count: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        GeneratorConfig::new(8, 2.0)
            .with_alphabets(LabelAlphabets::new(4, 2))
            .generate_many(count, &mut rng)
            .unwrap()
    }

    type GraphPrint = (
        u64,
        Vec<gbd_graph::Label>,
        Vec<(gbd_graph::EdgeKey, gbd_graph::Label)>,
    );

    fn fingerprint(database: &DynamicDatabase) -> Vec<GraphPrint> {
        database
            .live_graphs()
            .map(|(id, graph)| {
                (
                    id,
                    graph.vertex_labels().to_vec(),
                    graph.edges().collect::<Vec<_>>(),
                )
            })
            .collect()
    }

    fn dir() -> PathBuf {
        PathBuf::from("db")
    }

    #[test]
    fn create_mutate_reopen_round_trips() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(5, 1));
        let mut db =
            DurableDatabase::create(vfs.clone(), dir(), base, DurabilityConfig::default()).unwrap();
        let extra = sample_graphs(3, 2);
        let a = db.insert(extra[0].clone()).unwrap();
        let _b = db.insert(extra[1].clone()).unwrap();
        db.remove(1).unwrap();
        db.remove(a).unwrap();
        db.insert(extra[2].clone()).unwrap();
        assert_eq!(db.len(), 6);
        let expected = fingerprint(db.database());
        drop(db);

        let reopened =
            DurableDatabase::open(vfs.clone(), dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(reopened.database()), expected);
        assert_eq!(reopened.generation(), 1);

        // And the same after an actual power loss: every ack was synced.
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
    }

    #[test]
    fn creating_twice_is_an_error() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(2, 3));
        DurableDatabase::create(
            vfs.clone(),
            dir(),
            base.clone(),
            DurabilityConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            DurableDatabase::create(vfs, dir(), base, DurabilityConfig::default()),
            Err(StoreError::Io { .. })
        ));
    }

    #[test]
    fn unsynced_acks_may_roll_back_but_recovery_is_a_prefix() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(4, 4));
        let config = DurabilityConfig::default().with_sync_acks(false);
        let mut db = DurableDatabase::create(vfs.clone(), dir(), base, config).unwrap();
        let states = {
            let mut states = vec![fingerprint(db.database())];
            for graph in sample_graphs(3, 5) {
                db.insert(graph).unwrap();
                states.push(fingerprint(db.database()));
            }
            states
        };
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), config).unwrap();
        let got = fingerprint(recovered.database());
        assert!(
            states.contains(&got),
            "recovered state must be a prefix of the mutation history"
        );
    }

    #[test]
    fn explicit_sync_makes_batched_mutations_durable() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(4, 6));
        let config = DurabilityConfig::default().with_sync_acks(false);
        let mut db = DurableDatabase::create(vfs.clone(), dir(), base, config).unwrap();
        for graph in sample_graphs(3, 7) {
            db.insert(graph).unwrap();
        }
        db.sync().unwrap();
        let expected = fingerprint(db.database());
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), config).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
    }

    #[test]
    fn compact_rotates_generations_and_cleans_stale_files() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(5, 8));
        let mut db =
            DurableDatabase::create(vfs.clone(), dir(), base, DurabilityConfig::default()).unwrap();
        for graph in sample_graphs(4, 9) {
            db.insert(graph).unwrap();
        }
        db.remove(0).unwrap();
        db.remove(6).unwrap();
        let expected = fingerprint(db.database());
        let live = db.compact().unwrap();
        assert_eq!(live, 7);
        assert_eq!(db.generation(), 2);
        assert_eq!(fingerprint(db.database()), expected);

        // Mutations keep flowing after rotation, and survive a crash.
        let id = db.insert(sample_graphs(1, 10).pop().unwrap()).unwrap();
        assert_eq!(id, 9, "id assignment continues across compaction");
        let expected = fingerprint(db.database());
        vfs.power_cycle();
        let recovered =
            DurableDatabase::open(vfs.clone(), dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
        assert_eq!(recovered.generation(), 2);
        let names = vfs.list(&dir()).unwrap();
        assert!(
            !names.contains(&Manifest::snapshot_name(1)) && !names.contains(&Manifest::wal_name(1)),
            "generation 1 files were cleaned up: {names:?}"
        );
    }

    #[test]
    fn auto_compaction_triggers_on_wal_growth() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(3, 11));
        let config = DurabilityConfig::default().with_auto_compact_wal_bytes(Some(256));
        let mut db = DurableDatabase::create(vfs, dir(), base, config).unwrap();
        for graph in sample_graphs(6, 12) {
            db.insert(graph).unwrap();
        }
        assert!(db.generation() > 1, "wal growth forced a rotation");
        assert!(db.wal_bytes() < 256 + 200, "rotation reset the log");
        assert_eq!(db.len(), 9);
    }

    #[test]
    fn torn_tail_is_truncated_in_place_cleanly() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(3, 13));
        let mut db =
            DurableDatabase::create(vfs.clone(), dir(), base, DurabilityConfig::default()).unwrap();
        db.insert(sample_graphs(1, 14).pop().unwrap()).unwrap();
        let expected = fingerprint(db.database());
        let wal_path = Manifest { generation: 1 }.wal_path(&dir());
        // A crash mid-append leaves half a record; it was never acked.
        vfs.append(&wal_path, &[0x55; 7]).unwrap();
        vfs.sync(&wal_path).unwrap();
        vfs.power_cycle();
        let mut recovered =
            DurableDatabase::open(vfs.clone(), dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
        // The truncated log accepts new records where the tear was.
        recovered
            .insert(sample_graphs(1, 15).pop().unwrap())
            .unwrap();
        let expected = fingerprint(recovered.database());
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
    }

    /// The review-critical scenario: the WAL ends in a *synced* torn tail,
    /// and recovery itself crashes at every point of its truncate + sync.
    /// Because the log is shortened in place (never rewritten), the synced
    /// prefix — and with it every acknowledged mutation — survives any of
    /// those crashes; a rewrite-based truncation would lose the whole log
    /// when the O_TRUNC reaches the medium before the rewrite is flushed,
    /// which the `FaultVfs` overwrite model makes observable.
    #[test]
    fn crash_during_recovery_truncation_never_loses_synced_acks() {
        let build = || {
            let vfs = FaultVfs::new();
            let base = GraphDatabase::from_graphs(sample_graphs(3, 23));
            let mut db =
                DurableDatabase::create(vfs.clone(), dir(), base, DurabilityConfig::default())
                    .unwrap();
            db.insert(sample_graphs(1, 24).pop().unwrap()).unwrap();
            let expected = fingerprint(db.database());
            drop(db);
            // A torn tail that made it to the durable medium.
            let wal_path = Manifest { generation: 1 }.wal_path(&dir());
            vfs.append(&wal_path, &[0x55; 7]).unwrap();
            vfs.sync(&wal_path).unwrap();
            (vfs, expected)
        };
        let (probe, expected) = build();
        probe.arm(FaultSchedule::default());
        DurableDatabase::open(probe.clone(), dir(), DurabilityConfig::default()).unwrap();
        let budget = probe.bytes_charged();
        assert!(budget > 0, "recovery must charge the truncate and sync");

        for crash_at in 0..budget {
            let (vfs, _) = build();
            vfs.arm(FaultSchedule::crash_after(crash_at));
            let _ = DurableDatabase::open(vfs.clone(), dir(), DurabilityConfig::default());
            vfs.power_cycle();
            let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default())
                .unwrap_or_else(|e| panic!("crash at {crash_at}/{budget}: reopen failed: {e}"));
            assert_eq!(
                fingerprint(recovered.database()),
                expected,
                "crash at {crash_at}/{budget} lost a synced ack"
            );
        }
    }

    /// A failed append seals the write path: further mutations are typed
    /// errors (no record may land after torn bytes), reads keep working,
    /// and reopening recovers and resumes.
    #[test]
    fn failed_append_seals_the_write_path_until_reopen() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(3, 25));
        let mut db =
            DurableDatabase::create(vfs.clone(), dir(), base, DurabilityConfig::default()).unwrap();
        let graphs = sample_graphs(3, 26);
        db.insert(graphs[0].clone()).unwrap();
        let expected = fingerprint(db.database());
        // A transient fault tears the next append mid-record…
        vfs.arm(FaultSchedule::crash_after(3));
        assert!(db.insert(graphs[1].clone()).is_err());
        vfs.arm(FaultSchedule::default());
        // …and even though the disk is back, the handle refuses to append
        // past the unaccounted torn bytes.
        assert!(matches!(
            db.insert(graphs[1].clone()),
            Err(StoreError::Io { message, .. }) if message.contains("poisoned")
        ));
        assert_eq!(fingerprint(db.database()), expected, "reads still serve");
        drop(db);
        // Reopen: the torn tail is truncated and writes flow again.
        let mut recovered =
            DurableDatabase::open(vfs.clone(), dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
        recovered.insert(graphs[2].clone()).unwrap();
        vfs.power_cycle();
        let reopened = DurableDatabase::open(vfs, dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(reopened.database()).len(), expected.len() + 1);
    }

    /// An auto-compaction failure after an acknowledged mutation is
    /// deferred (the insert still returns its id — the mutation *is*
    /// durable) and surfaced via `take_auto_compact_error`; the next
    /// mutation retries the rotation.
    #[test]
    fn auto_compaction_failure_is_deferred_not_returned() {
        // Measure the wal cost of one insert alone (append + sync).
        let graphs = sample_graphs(2, 27);
        let probe = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(3, 28));
        let mut db = DurableDatabase::create(
            probe.clone(),
            dir(),
            base.clone(),
            DurabilityConfig::default(),
        )
        .unwrap();
        probe.arm(FaultSchedule::default());
        db.insert(graphs[0].clone()).unwrap();
        let insert_cost = probe.bytes_charged();
        drop(db);

        // Same insert with every-mutation auto-compaction, crashing just
        // after the insert's own log write — inside the compaction.
        let vfs = FaultVfs::new();
        let config = DurabilityConfig::default().with_auto_compact_wal_bytes(Some(1));
        let mut db = DurableDatabase::create(vfs.clone(), dir(), base, config).unwrap();
        vfs.arm(FaultSchedule::crash_after(insert_cost + 2));
        let id = db
            .insert(graphs[0].clone())
            .expect("the durably logged insert is acknowledged despite the compaction failure");
        let deferred = db.take_auto_compact_error();
        assert!(deferred.is_some(), "the compaction error is held back");
        assert!(db.take_auto_compact_error().is_none(), "taken once");
        assert_eq!(db.generation(), 1, "the failed rotation left gen 1 live");
        assert!(db.contains(id));

        // The fault clears; the next mutation retries the rotation.
        vfs.arm(FaultSchedule::default());
        db.insert(graphs[1].clone()).unwrap();
        assert!(db.take_auto_compact_error().is_none());
        assert!(db.generation() > 1, "the retried rotation went through");
        let expected = fingerprint(db.database());
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
    }

    /// Two rotations failing back-to-back must keep the *first* error for
    /// [`DurableDatabase::take_auto_compact_error`] — the root cause —
    /// while counting the repeat, instead of silently overwriting it.
    #[test]
    fn consecutive_auto_compaction_failures_keep_the_first_error() {
        // Measure the wal cost of one insert alone (append + sync).
        let graphs = sample_graphs(3, 29);
        let probe = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(3, 30));
        let mut db = DurableDatabase::create(
            probe.clone(),
            dir(),
            base.clone(),
            DurabilityConfig::default(),
        )
        .unwrap();
        probe.arm(FaultSchedule::default());
        db.insert(graphs[0].clone()).unwrap();
        let first_cost = probe.bytes_charged();
        probe.arm(FaultSchedule::default());
        db.insert(graphs[1].clone()).unwrap();
        let second_cost = probe.bytes_charged();
        drop(db);

        // Every-mutation auto-compaction; both rotations crash right after
        // their triggering insert's own (acknowledged) log write.
        let vfs = FaultVfs::new();
        let config = DurabilityConfig::default().with_auto_compact_wal_bytes(Some(1));
        let mut db = DurableDatabase::create(vfs.clone(), dir(), base, config).unwrap();

        vfs.arm(FaultSchedule::crash_after(first_cost + 2));
        let first = db.insert(graphs[0].clone()).expect("first insert is acked");
        assert_eq!(db.auto_compact_failures(), 1);
        let first_error = format!("{:?}", db.auto_compact_error().unwrap());

        vfs.arm(FaultSchedule::crash_after(second_cost + 2));
        let second = db
            .insert(graphs[1].clone())
            .expect("second insert is acked despite the second failed rotation");
        assert_eq!(db.auto_compact_failures(), 2, "the repeat is counted");
        assert_eq!(
            format!("{:?}", db.auto_compact_error().unwrap()),
            first_error,
            "the second failure must not overwrite the first (root-cause) error"
        );

        let taken = db.take_auto_compact_error().expect("an error was held");
        assert_eq!(format!("{taken:?}"), first_error);
        assert_eq!(db.auto_compact_failures(), 0, "take resets the streak");
        assert!(db.take_auto_compact_error().is_none());

        // Both mutations survived their failed rotations; the streak ends
        // once the fault clears and a rotation goes through.
        assert!(db.contains(first) && db.contains(second));
        vfs.arm(FaultSchedule::default());
        db.insert(graphs[2].clone()).unwrap();
        assert_eq!(db.auto_compact_failures(), 0);
        assert!(db.auto_compact_error().is_none());
        assert!(db.generation() > 1, "the retried rotation went through");
        let expected = fingerprint(db.database());
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default()).unwrap();
        assert_eq!(fingerprint(recovered.database()), expected);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error_not_a_panic() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(3, 16));
        let mut db =
            DurableDatabase::create(vfs.clone(), dir(), base, DurabilityConfig::default()).unwrap();
        for graph in sample_graphs(3, 17) {
            db.insert(graph).unwrap();
        }
        drop(db);
        let wal_path = Manifest { generation: 1 }.wal_path(&dir());
        let wal_len = vfs.read(&wal_path).unwrap().len();
        assert!(vfs.corrupt(&wal_path, wal_len / 2, 0x20));
        match DurableDatabase::open(vfs, dir(), DurabilityConfig::default()) {
            Err(
                StoreError::CorruptAt { .. }
                | StoreError::Corrupt(_)
                | StoreError::Truncated { .. },
            ) => {}
            other => panic!("expected a typed corruption error, got {other:?}"),
        }
    }

    #[test]
    fn failed_remove_logs_nothing() {
        let vfs = FaultVfs::new();
        let base = GraphDatabase::from_graphs(sample_graphs(3, 18));
        let mut db =
            DurableDatabase::create(vfs, dir(), base, DurabilityConfig::default()).unwrap();
        let before = db.wal_bytes();
        assert!(matches!(
            db.remove(999),
            Err(StoreError::InvalidDatabase(EngineError::UnknownGraphId(
                999
            )))
        ));
        assert_eq!(db.wal_bytes(), before);
    }

    /// Crash at every charged byte of a full compaction: reopening must
    /// always succeed and always recover the exact pre-crash live set.
    #[test]
    fn compaction_is_atomic_at_every_crash_point() {
        let build = || {
            let vfs = FaultVfs::new();
            let base = GraphDatabase::from_graphs(sample_graphs(4, 19));
            let mut db =
                DurableDatabase::create(vfs.clone(), dir(), base, DurabilityConfig::default())
                    .unwrap();
            for graph in sample_graphs(2, 20) {
                db.insert(graph).unwrap();
            }
            db.remove(1).unwrap();
            (vfs, db)
        };
        let (probe_vfs, mut probe) = build();
        let expected = fingerprint(probe.database());
        probe_vfs.arm(FaultSchedule::default());
        probe.compact().unwrap();
        let budget = probe_vfs.bytes_charged();
        assert_eq!(fingerprint(probe.database()), expected);

        for crash_at in 0..budget {
            let (vfs, mut db) = build();
            vfs.arm(FaultSchedule::crash_after(crash_at));
            let _ = db.compact();
            vfs.power_cycle();
            let recovered = DurableDatabase::open(vfs, dir(), DurabilityConfig::default())
                .unwrap_or_else(|e| panic!("crash at {crash_at}: open failed: {e}"));
            assert_eq!(
                fingerprint(recovered.database()),
                expected,
                "crash at {crash_at} changed the live set"
            );
        }
    }
}
