//! Binary encoding primitives for snapshot files.
//!
//! Everything is little-endian, length-prefixed and bounds-checked; the
//! reader returns a typed [`StoreError`] on any malformed input instead of
//! panicking, which is what lets [`crate::Snapshot::load`] make its
//! "corrupt files never panic" guarantee. There are no external
//! dependencies — the checksum is a plain FNV-1a/64.

use crate::error::{StoreError, StoreResult};

/// The 8-byte file magic (`GBDSNAP` + NUL).
pub const MAGIC: [u8; 8] = *b"GBDSNAP\0";

/// The current snapshot format version.
pub const VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the payload checksum. Not cryptographic; it guards
/// against truncation and bit rot, not against adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes raw bytes (no length prefix).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.u64(value.len() as u64);
        self.bytes(value.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole slice.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Byte offset of the next read — errors reported against a larger
    /// structure carry this so corruption is locatable in the file.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes `len` raw bytes.
    pub fn take(&mut self, len: usize, context: &'static str) -> StoreResult<&'a [u8]> {
        if len > self.remaining() {
            return Err(StoreError::Truncated { context });
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> StoreResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> StoreResult<u32> {
        let bytes = self.take(4, context)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes taken")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> StoreResult<u64> {
        let bytes = self.take(8, context)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes taken")))
    }

    /// Reads a `u64` that must fit in `usize` and — as a cheap sanity bound
    /// against allocation bombs — must not claim more elements than the
    /// remaining bytes could possibly encode (`min_element_size ≥ 1`).
    pub fn count(&mut self, min_element_size: usize, context: &'static str) -> StoreResult<usize> {
        let raw = self.u64(context)?;
        let count = usize::try_from(raw)
            .map_err(|_| StoreError::Corrupt(format!("{context}: count {raw} overflows")))?;
        if count > self.remaining() / min_element_size.max(1) {
            return Err(StoreError::Truncated { context });
        }
        Ok(count)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> StoreResult<String> {
        let len = self.count(1, context)?;
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt(format!("{context}: invalid UTF-8")))
    }

    /// Splits off a sub-reader over the next `len` bytes.
    pub fn sub_reader(&mut self, len: usize, context: &'static str) -> StoreResult<Reader<'a>> {
        Ok(Reader::new(self.take(len, context)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        assert!(!w.is_empty());
        assert_eq!(w.len(), 1 + 4 + 8 + (8 + 6) + 3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.str("d").unwrap(), "héllo");
        assert_eq!(r.take(3, "e").unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_fail_with_context() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.u32("header"),
            Err(StoreError::Truncated { context: "header" })
        );
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn counts_reject_allocation_bombs() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.count(4, "bomb").is_err());
    }

    #[test]
    fn invalid_utf8_is_corrupt_not_a_panic() {
        let mut w = Writer::new();
        w.u64(2);
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.str("name"), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
