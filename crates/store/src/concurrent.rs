//! Snapshot-isolated serving over a **durable** dynamic database: the
//! store-side twin of `gbda_core::ConcurrentEngine`.
//!
//! [`ConcurrentDurable`] pairs a [`gbda_core::SnapshotReader`] with a
//! mutex-guarded [`DurableDatabase`] so concurrent readers pin immutable
//! [`gbda_core::Generation`]s while writers append to the write-ahead log.
//! The ordering contract is the whole point of this wrapper:
//!
//! > **A generation is published only after the mutation it contains has
//! > been acknowledged by the WAL.**
//!
//! [`ConcurrentDurable::insert`] and [`ConcurrentDurable::remove`] first
//! run the durable *log-then-apply* path — the record is appended (and,
//! with [`gbda_core::DurabilityConfig::sync_acks`], synced) before the
//! in-memory state changes — and publish the new generation strictly
//! afterwards. A failed append therefore never becomes visible to any
//! reader: the previously published generation keeps serving, bit-identical,
//! and recovery after a crash restores a state at least as new as anything
//! a reader ever observed.

use std::sync::{Arc, Mutex};

use gbd_graph::Graph;
use gbda_core::{
    DynamicOutcome, DynamicTopKOutcome, GbdaConfig, Generation, OfflineIndex, SearchStats,
    SnapshotReader,
};

use crate::durable::DurableDatabase;
use crate::error::StoreResult;
use crate::vfs::Vfs;

/// A crash-safe [`DurableDatabase`] served through snapshot-isolated
/// generations: readers pin with one atomic-cost load and never block the
/// writer; every published generation corresponds to a WAL-acknowledged
/// state.
///
/// Mutations are serialized through an internal mutex (the WAL is a single
/// append stream anyway); queries go through the embedded
/// [`gbda_core::SnapshotReader`] and never take that mutex.
pub struct ConcurrentDurable<V: Vfs> {
    reader: SnapshotReader,
    writer: Mutex<DurableDatabase<V>>,
}

impl<V: Vfs> ConcurrentDurable<V> {
    /// Wraps an already-created (or recovered) durable database, publishing
    /// its current state as the first visible generation.
    pub fn new(database: DurableDatabase<V>, index: OfflineIndex, config: GbdaConfig) -> Self {
        let reader = SnapshotReader::new(database.database(), index, config);
        ConcurrentDurable {
            reader,
            writer: Mutex::new(database),
        }
    }

    /// The embedded snapshot reader (for pinned multi-query sessions).
    pub fn reader(&self) -> &SnapshotReader {
        &self.reader
    }

    /// Pins the latest published (WAL-acknowledged) generation.
    pub fn pin(&self) -> Arc<Generation> {
        self.reader.pin()
    }

    /// The epoch of the latest published generation.
    pub fn epoch(&self) -> u64 {
        self.reader.epoch()
    }

    /// Live graphs in the latest published generation.
    pub fn len(&self) -> usize {
        self.reader.pin().len()
    }

    /// Whether the latest published generation has no live graphs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Durably inserts `graph`: WAL append + ack first, generation
    /// publication strictly after. Returns the assigned id.
    ///
    /// # Errors
    /// Propagates the WAL/auto-compaction errors of
    /// [`DurableDatabase::insert`]; on error **no** new generation is
    /// published and readers keep the previous state.
    pub fn insert(&self, graph: Graph) -> StoreResult<u64> {
        let mut db = self.writer.lock().expect("durable writer mutex poisoned");
        let id = db.insert(graph)?;
        self.reader.publish(db.database());
        Ok(id)
    }

    /// Durably removes `id`: WAL append + ack first, generation publication
    /// strictly after.
    ///
    /// # Errors
    /// Propagates the errors of [`DurableDatabase::remove`] (unknown id,
    /// WAL failures); on error no new generation is published.
    pub fn remove(&self, id: u64) -> StoreResult<()> {
        let mut db = self.writer.lock().expect("durable writer mutex poisoned");
        db.remove(id)?;
        self.reader.publish(db.database());
        Ok(())
    }

    /// Rotates to a compacted snapshot generation and publishes the
    /// compacted state. Returns the number of live graphs.
    ///
    /// # Errors
    /// Propagates the errors of [`DurableDatabase::compact`]. Compaction
    /// never changes the live set, so on error readers simply keep serving
    /// the pre-compaction generation — still correct.
    pub fn compact(&self) -> StoreResult<usize> {
        let mut db = self.writer.lock().expect("durable writer mutex poisoned");
        let live = db.compact()?;
        self.reader.publish(db.database());
        Ok(live)
    }

    /// Syncs the WAL (for batched, non-`sync_acks` configurations).
    ///
    /// # Errors
    /// Propagates the I/O errors of [`DurableDatabase::sync`].
    pub fn sync(&self) -> StoreResult<()> {
        self.writer
            .lock()
            .expect("durable writer mutex poisoned")
            .sync()
    }

    /// Takes the first deferred auto-compaction error, resetting the
    /// failure counter (see [`DurableDatabase::take_auto_compact_error`]).
    pub fn take_auto_compact_error(&self) -> Option<crate::StoreError> {
        self.writer
            .lock()
            .expect("durable writer mutex poisoned")
            .take_auto_compact_error()
    }

    /// Failed deferred auto-compaction attempts since the last take.
    pub fn auto_compact_failures(&self) -> u64 {
        self.writer
            .lock()
            .expect("durable writer mutex poisoned")
            .auto_compact_failures()
    }

    /// Threshold search over the latest published generation.
    pub fn search(&self, query: &Graph) -> DynamicOutcome {
        self.reader.search(query)
    }

    /// Ranked top-`k` search over the latest published generation.
    pub fn search_top_k(&self, query: &Graph, k: usize) -> DynamicTopKOutcome {
        self.reader.search_top_k(query, k)
    }

    /// Streaming search over the latest published generation.
    pub fn search_streaming<F>(&self, query: &Graph, on_match: F) -> SearchStats
    where
        F: FnMut(u64, Option<f64>),
    {
        self.reader.search_streaming(query, on_match)
    }

    /// Tears the wrapper down, returning the durable database (e.g. to
    /// close or inspect it after the serving phase).
    pub fn into_inner(self) -> DurableDatabase<V> {
        self.writer
            .into_inner()
            .expect("durable writer mutex poisoned")
    }
}

// The wrapper is shared across serving threads by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentDurable<crate::StdVfs>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultSchedule, FaultVfs};
    use gbd_graph::{GeneratorConfig, LabelAlphabets};
    use gbda_core::{DurabilityConfig, GraphDatabase};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_graphs(count: usize, seed: u64) -> Vec<Graph> {
        let mut rng = StdRng::seed_from_u64(seed);
        GeneratorConfig::new(8, 2.0)
            .with_alphabets(LabelAlphabets::new(4, 2))
            .generate_many(count, &mut rng)
            .unwrap()
    }

    fn engine_over(vfs: FaultVfs, seed: u64) -> ConcurrentDurable<FaultVfs> {
        let base = GraphDatabase::from_graphs(sample_graphs(6, seed));
        let config = GbdaConfig::new(2, 0.5).with_sample_pairs(60);
        let index = OfflineIndex::build(&base, &config).unwrap();
        let db = DurableDatabase::create(vfs, "db", base, DurabilityConfig::default()).unwrap();
        ConcurrentDurable::new(db, index, config)
    }

    #[test]
    fn mutations_publish_only_after_wal_ack() {
        let vfs = FaultVfs::new();
        let engine = engine_over(vfs.clone(), 31);
        assert_eq!(engine.epoch(), 0);
        let extra = sample_graphs(2, 32);
        let id = engine.insert(extra[0].clone()).unwrap();
        assert_eq!(engine.epoch(), 1);
        assert_eq!(engine.len(), 7);

        // Everything acked so far survives a power cycle, and the recovered
        // state matches what readers were being served.
        let pinned = engine.pin();
        let served = pinned.live_ids();
        let db = engine.into_inner();
        drop(db);
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, "db", DurabilityConfig::default()).unwrap();
        let recovered_ids = recovered.database().live_ids();
        assert_eq!(recovered_ids, served);
        assert!(recovered_ids.contains(&id));
    }

    #[test]
    fn failed_wal_append_publishes_no_generation() {
        let vfs = FaultVfs::new();
        let engine = engine_over(vfs.clone(), 33);
        let extra = sample_graphs(3, 34);
        engine.insert(extra[0].clone()).unwrap();
        let epoch_before = engine.epoch();
        let before = engine.pin();
        let ids_before = before.live_ids();

        // Cut the disk: the very next write crashes, so the insert's WAL
        // append fails before any acknowledgment.
        vfs.arm(FaultSchedule::crash_after(0));
        let err = engine.insert(extra[1].clone());
        assert!(err.is_err(), "append must fail under the injected crash");

        // No new generation became visible; readers still serve the exact
        // pre-failure state.
        assert_eq!(engine.epoch(), epoch_before);
        let after = engine.pin();
        assert_eq!(after.epoch(), before.epoch());
        let ids_after = after.live_ids();
        assert_eq!(ids_after, ids_before);

        // The WAL writer seals itself after a failed append; even with the
        // disk healed, further mutations fail — and still publish nothing.
        vfs.arm(FaultSchedule::default());
        assert!(engine.insert(extra[2].clone()).is_err());
        assert_eq!(engine.epoch(), epoch_before);

        // The recovery path: reopen the database, which serves exactly the
        // acknowledged prefix readers were pinned to.
        drop(engine.into_inner());
        vfs.power_cycle();
        let recovered = DurableDatabase::open(vfs, "db", DurabilityConfig::default()).unwrap();
        assert_eq!(recovered.database().live_ids(), ids_before);
    }

    #[test]
    fn queries_serve_the_published_generation() {
        let vfs = FaultVfs::new();
        let engine = engine_over(vfs, 35);
        let query = sample_graphs(1, 36).pop().unwrap();
        let outcome = engine.search(&query);
        let pinned = engine.pin();
        let replay = engine.reader().search_pinned(&pinned, &query);
        assert_eq!(outcome.matches, replay.matches);
        let ranked = engine.search_top_k(&query, 3);
        assert!(ranked.hits.len() <= 3);
    }
}
