//! The storage-engine error type.

use std::fmt;

use gbda_core::EngineError;

/// Convenient result alias for storage operations.
pub type StoreResult<T> = std::result::Result<T, StoreError>;

/// Errors raised while writing or reading snapshot files.
///
/// Every way a snapshot can fail to load — I/O, a foreign file, a future
/// format version, truncation, bit rot, or internally inconsistent content —
/// maps to a distinct variant; no input byte stream panics the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The file is a snapshot of a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The file ended in the middle of the structure being decoded.
    Truncated {
        /// Which structure was being decoded.
        context: &'static str,
    },
    /// The payload hash does not match the header — the file was corrupted
    /// after it was written.
    ChecksumMismatch {
        /// Hash recorded in the header.
        expected: u64,
        /// Hash of the payload actually on disk.
        actual: u64,
    },
    /// The bytes decode but violate the format's structural rules.
    Corrupt(String),
    /// A write-ahead-log record or manifest structure is damaged at a known
    /// byte offset of its file — corruption *inside* the synced region,
    /// which recovery must reject rather than silently truncate.
    CorruptAt {
        /// Byte offset of the damaged structure within its file.
        offset: u64,
        /// What is wrong there.
        reason: String,
    },
    /// The sections decode individually but do not assemble into a valid
    /// database (a cross-structure invariant failed).
    InvalidDatabase(EngineError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            StoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            StoreError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            StoreError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            StoreError::Corrupt(reason) => write!(f, "corrupt snapshot: {reason}"),
            StoreError::CorruptAt { offset, reason } => {
                write!(f, "corrupt at byte {offset}: {reason}")
            }
            StoreError::InvalidDatabase(e) => write!(f, "snapshot decodes to an invalid database: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::InvalidDatabase(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for StoreError {
    fn from(e: EngineError) -> Self {
        StoreError::InvalidDatabase(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = StoreError::Io {
            path: "/tmp/x".into(),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/tmp/x"));
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        assert!(StoreError::UnsupportedVersion(9).to_string().contains('9'));
        let e = StoreError::Truncated { context: "arena" };
        assert!(e.to_string().contains("arena"));
        let e = StoreError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e = StoreError::Corrupt("weird section".into());
        assert!(e.to_string().contains("weird section"));
        let e = StoreError::CorruptAt {
            offset: 128,
            reason: "wal record checksum mismatch".into(),
        };
        assert!(e.to_string().contains("128"));
        assert!(e.to_string().contains("checksum"));
        let e = StoreError::from(EngineError::CorruptDatabase {
            reason: "spans".into(),
        });
        assert!(e.to_string().contains("spans"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
