//! The virtual filesystem the storage engine writes through.
//!
//! Every byte the durability layer persists — snapshot generations, the
//! write-ahead log, the manifest — goes through the [`Vfs`] trait, which is
//! exactly what makes the crash-consistency claims *testable*: production
//! uses [`StdVfs`] (plain `std::fs` with real `fsync`s), while the test
//! suite swaps in [`FaultVfs`], an in-memory filesystem that
//! deterministically injects crashes after a byte budget, torn/short
//! writes, dropped syncs, and seeded bit flips, then simulates the power
//! loss with [`FaultVfs::power_cycle`].
//!
//! # The durability model
//!
//! [`FaultVfs`] models the POSIX worst case: data reaches the *durable*
//! image only on a successful [`Vfs::sync`], and a rename (or remove)
//! reaches it only on the next [`Vfs::sync_dir`] of its directory — a
//! rename alone is **not** durable, which is precisely the bug class the
//! harness exists to catch. Destruction is modeled with the opposite
//! polarity: an in-place overwrite ([`Vfs::write`] over an existing file)
//! empties the durable image *immediately* — the `O_TRUNC` can reach the
//! medium before any new byte is synced — and [`Vfs::truncate`] drops the
//! durable tail immediately, so recovery code that rewrites a file when it
//! only means to shorten it is caught by the harness. On [`FaultVfs::power_cycle`] the visible state
//! reverts to the durable image (or, with
//! [`FaultSchedule::persist_unsynced`], the opposite extreme: everything
//! written survives, including torn tails), so a recovery path proven
//! correct under both extremes is correct for any subset in between that a
//! real disk might persist.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::{StoreError, StoreResult};

/// The filesystem operations the storage engine needs.
///
/// Implementations map every failure to a typed [`StoreError::Io`]; none of
/// the methods panic on any input.
pub trait Vfs {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> StoreResult<Vec<u8>>;
    /// Creates or truncates a file with the given contents (no sync).
    ///
    /// This is an in-place overwrite (`O_TRUNC` + rewrite): the old
    /// contents may be destroyed on the durable medium *before* the new
    /// bytes are synced, so it must never be used to shorten a file whose
    /// existing prefix has to survive a crash — that is [`Vfs::truncate`].
    fn write(&self, path: &Path, bytes: &[u8]) -> StoreResult<()>;
    /// Appends to a file, creating it when missing (no sync).
    fn append(&self, path: &Path, bytes: &[u8]) -> StoreResult<()>;
    /// Shortens a file to `len` bytes in place (extending with zeros when
    /// `len` exceeds the current size, like `ftruncate`), without touching
    /// the surviving prefix (no sync).
    fn truncate(&self, path: &Path, len: u64) -> StoreResult<()>;
    /// Syncs a file's contents to durable storage (`fsync`).
    fn sync(&self, path: &Path) -> StoreResult<()>;
    /// Syncs a directory, making completed renames/removes in it durable.
    fn sync_dir(&self, dir: &Path) -> StoreResult<()>;
    /// Atomically renames `from` onto `to` (replacing `to` if it exists).
    fn rename(&self, from: &Path, to: &Path) -> StoreResult<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> StoreResult<()>;
    /// Lists the file names (not paths) directly inside a directory.
    fn list(&self, dir: &Path) -> StoreResult<Vec<String>>;
    /// Whether a file currently exists.
    fn exists(&self, path: &Path) -> bool;
    /// Creates a directory and its parents (no-op when already present).
    fn create_dir_all(&self, dir: &Path) -> StoreResult<()>;
}

fn io_error(path: &Path, e: impl std::fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// The real filesystem: `std::fs` plus explicit `fsync`s.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> StoreResult<Vec<u8>> {
        std::fs::read(path).map_err(|e| io_error(path, e))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> StoreResult<()> {
        std::fs::write(path, bytes).map_err(|e| io_error(path, e))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> StoreResult<()> {
        use std::io::Write as _;
        std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .and_then(|mut file| file.write_all(bytes))
            .map_err(|e| io_error(path, e))
    }

    fn truncate(&self, path: &Path, len: u64) -> StoreResult<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .and_then(|file| file.set_len(len))
            .map_err(|e| io_error(path, e))
    }

    fn sync(&self, path: &Path) -> StoreResult<()> {
        // fsync through a fresh descriptor flushes the file's dirty pages;
        // the descriptor the bytes were written through need not be alive.
        // The handle must be writable: Windows' FlushFileBuffers rejects
        // read-only handles.
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .and_then(|file| file.sync_all())
            .map_err(|e| io_error(path, e))
    }

    fn sync_dir(&self, dir: &Path) -> StoreResult<()> {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        #[cfg(unix)]
        {
            std::fs::File::open(dir)
                .and_then(|file| file.sync_all())
                .map_err(|e| io_error(dir, e))
        }
        #[cfg(not(unix))]
        {
            // Directory handles cannot be fsynced on this platform; the
            // rename itself is the best available barrier.
            Ok(())
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> StoreResult<()> {
        std::fs::rename(from, to).map_err(|e| io_error(from, e))
    }

    fn remove(&self, path: &Path) -> StoreResult<()> {
        std::fs::remove_file(path).map_err(|e| io_error(path, e))
    }

    fn list(&self, dir: &Path) -> StoreResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_error(dir, e))? {
            let entry = entry.map_err(|e| io_error(dir, e))?;
            if entry.path().is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn create_dir_all(&self, dir: &Path) -> StoreResult<()> {
        std::fs::create_dir_all(dir).map_err(|e| io_error(dir, e))
    }
}

/// One deterministic fault schedule, armed via [`FaultVfs::arm`].
///
/// All faults are one-shot: [`FaultVfs::power_cycle`] clears the schedule,
/// so recovery itself runs fault-free unless the caller re-arms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Crash (every subsequent operation fails with a typed
    /// [`StoreError::Io`]) once this many bytes have been charged. Data
    /// writes charge their length — a write crossing the budget is applied
    /// *torn*, only its in-budget prefix — and metadata operations (sync,
    /// rename, remove, dir sync) charge one byte each, so a byte sweep
    /// visits every crash point between and inside operations.
    pub crash_after_bytes: Option<u64>,
    /// Syncs report success without making anything durable — the lying
    /// disk. Acknowledgments based on such syncs can be rolled back by a
    /// crash; recovery must still land on a consistent prefix.
    pub drop_syncs: bool,
    /// When a write is torn, fill the out-of-budget remainder with seeded
    /// garbage bytes instead of dropping it — the half-written sector.
    pub torn_garbage: bool,
    /// On [`FaultVfs::power_cycle`], keep everything written (including a
    /// torn tail) instead of reverting to the synced durable image — the
    /// opposite extreme of the worst-case model.
    pub persist_unsynced: bool,
    /// Number of single-bit flips applied to the durable image at the next
    /// [`FaultVfs::power_cycle`] — seeded bit rot for the corruption
    /// sweeps.
    pub flip_bits: u32,
    /// Seed of the deterministic generator behind `torn_garbage` and
    /// `flip_bits`.
    pub seed: u64,
}

impl FaultSchedule {
    /// A schedule that crashes after `bytes` charged bytes.
    pub fn crash_after(bytes: u64) -> Self {
        FaultSchedule {
            crash_after_bytes: Some(bytes),
            ..FaultSchedule::default()
        }
    }
}

/// A pending namespace operation, applied to the durable image only on the
/// next directory sync.
#[derive(Debug, Clone)]
enum PendingOp {
    Rename(String, String),
    Remove(String),
}

#[derive(Debug, Default)]
struct FaultState {
    /// What readers see right now.
    visible: HashMap<String, Vec<u8>>,
    /// What survives a power loss (worst-case model).
    durable: HashMap<String, Vec<u8>>,
    /// Renames/removes not yet made durable by a directory sync.
    pending: Vec<PendingOp>,
    schedule: FaultSchedule,
    charged: u64,
    crashed: bool,
    power_cycles: u64,
}

/// xorshift64* — a tiny deterministic generator for garbage and flips.
fn mix(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultState {
    /// Charges `amount` bytes against the crash budget. Returns how many of
    /// them may be applied; flips the crashed flag when the budget is hit.
    fn charge(&mut self, amount: u64) -> u64 {
        match self.schedule.crash_after_bytes {
            None => {
                self.charged += amount;
                amount
            }
            Some(budget) => {
                let left = budget.saturating_sub(self.charged);
                if amount <= left {
                    self.charged += amount;
                    amount
                } else {
                    self.charged = budget;
                    self.crashed = true;
                    left
                }
            }
        }
    }

    fn crash_error(path: &Path) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            message: "simulated crash".into(),
        }
    }
}

fn key(path: &Path) -> String {
    path.to_string_lossy().into_owned()
}

/// An in-memory filesystem with deterministic fault injection — the test
/// double of [`StdVfs`]. Cloning shares the underlying state, so a test can
/// keep a handle while a `DurableDatabase` owns another.
///
/// See the [module docs](self) for the durability model.
#[derive(Debug, Clone, Default)]
pub struct FaultVfs {
    inner: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fresh, empty, fault-free filesystem.
    pub fn new() -> Self {
        FaultVfs::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A poisoned lock means a *test* panicked mid-operation; the state
        // is still structurally valid for the remaining assertions.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms a fault schedule and resets the byte-charge counter, so
    /// `crash_after_bytes` counts from this call.
    pub fn arm(&self, schedule: FaultSchedule) {
        let mut s = self.lock();
        s.schedule = schedule;
        s.charged = 0;
        s.crashed = false;
    }

    /// Bytes charged since the last [`Self::arm`] (or creation). Running a
    /// workload fault-free first gives the sweep range for a byte-by-byte
    /// crash-point enumeration.
    pub fn bytes_charged(&self) -> u64 {
        self.lock().charged
    }

    /// Whether the armed crash has triggered.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Number of power cycles simulated so far.
    pub fn power_cycles(&self) -> u64 {
        self.lock().power_cycles
    }

    /// Simulates the power loss and reboot: the visible state becomes the
    /// durable image (or, under [`FaultSchedule::persist_unsynced`], the
    /// durable image becomes everything written), scheduled bit flips are
    /// applied, and the fault schedule is cleared so recovery runs clean.
    pub fn power_cycle(&self) {
        let mut s = self.lock();
        if s.schedule.persist_unsynced {
            // Everything in flight reached the medium: realize pending
            // namespace ops against the *visible* image and keep it.
            s.durable = s.visible.clone();
        } else {
            s.visible = s.durable.clone();
        }
        s.pending.clear();
        let flips = s.schedule.flip_bits;
        let mut rng = s.schedule.seed | 1;
        for _ in 0..flips {
            let mut names: Vec<String> = s
                .durable
                .iter()
                .filter(|(_, bytes)| !bytes.is_empty())
                .map(|(name, _)| name.clone())
                .collect();
            names.sort();
            if names.is_empty() {
                break;
            }
            let name = &names[(mix(&mut rng) as usize) % names.len()];
            let len = s.durable[name].len();
            let position = (mix(&mut rng) as usize) % len;
            let bit = 1u8 << ((mix(&mut rng) as u32) % 8);
            s.durable.get_mut(name).expect("name from durable")[position] ^= bit;
            if let Some(bytes) = s.visible.get_mut(name) {
                if position < bytes.len() {
                    bytes[position] ^= bit;
                }
            }
        }
        s.schedule = FaultSchedule::default();
        s.charged = 0;
        s.crashed = false;
        s.power_cycles += 1;
    }

    /// XORs `mask` into one byte of a file, in both the visible and the
    /// durable image — targeted bit rot for corruption sweeps. Returns
    /// `false` when the file is missing or shorter than `offset`.
    pub fn corrupt(&self, path: &Path, offset: usize, mask: u8) -> bool {
        let mut s = self.lock();
        let k = key(path);
        let state = &mut *s;
        let mut hit = false;
        for image in [&mut state.visible, &mut state.durable] {
            if let Some(bytes) = image.get_mut(&k) {
                if offset < bytes.len() {
                    bytes[offset] ^= mask;
                    hit = true;
                }
            }
        }
        hit
    }

    /// The current *durable* contents of a file — what a crash right now
    /// would preserve.
    pub fn durable_contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().durable.get(&key(path)).cloned()
    }

    /// The current visible length of a file.
    pub fn visible_len(&self, path: &Path) -> Option<usize> {
        self.lock().visible.get(&key(path)).map(Vec::len)
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> StoreResult<Vec<u8>> {
        let s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(path));
        }
        s.visible
            .get(&key(path))
            .cloned()
            .ok_or_else(|| io_error(path, "no such file"))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> StoreResult<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(path));
        }
        // An in-place overwrite is O_TRUNC first: the destruction of the
        // old contents can reach the durable medium at any moment after
        // the call — including before a single new byte is synced — so the
        // worst-case model applies it to the durable image eagerly. Code
        // that overwrites a file whose prefix must survive (instead of
        // using `truncate`) fails the harness, as it would a real disk.
        let k = key(path);
        if let Some(durable) = s.durable.get_mut(&k) {
            durable.clear();
        }
        let applied = s.charge(bytes.len() as u64) as usize;
        let mut content = bytes[..applied].to_vec();
        if s.crashed {
            if s.schedule.torn_garbage {
                let mut rng = (s.schedule.seed ^ s.charged) | 1;
                content.extend((applied..bytes.len()).map(|_| mix(&mut rng) as u8));
            }
            s.visible.insert(key(path), content);
            return Err(FaultState::crash_error(path));
        }
        s.visible.insert(key(path), content);
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> StoreResult<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(path));
        }
        let applied = s.charge(bytes.len() as u64) as usize;
        let crashed = s.crashed;
        let mut tail = bytes[..applied].to_vec();
        if crashed && s.schedule.torn_garbage {
            let mut rng = (s.schedule.seed ^ s.charged) | 1;
            tail.extend((applied..bytes.len()).map(|_| mix(&mut rng) as u8));
        }
        s.visible.entry(key(path)).or_default().extend(tail);
        if crashed {
            return Err(FaultState::crash_error(path));
        }
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> StoreResult<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(path));
        }
        if s.charge(1) == 0 {
            return Err(FaultState::crash_error(path));
        }
        let k = key(path);
        let Some(bytes) = s.visible.get_mut(&k) else {
            return Err(io_error(path, "no such file"));
        };
        bytes.resize(len as usize, 0);
        // Shortening destroys the durable tail eagerly (worst case: the
        // metadata update hits the medium before any sync); the surviving
        // prefix — and that is the point of `truncate` over `write` — is
        // untouched. Zero-extension is not durable until a sync.
        if let Some(durable) = s.durable.get_mut(&k) {
            durable.truncate(len as usize);
        }
        Ok(())
    }

    fn sync(&self, path: &Path) -> StoreResult<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(path));
        }
        if s.charge(1) == 0 {
            return Err(FaultState::crash_error(path));
        }
        let k = key(path);
        let Some(content) = s.visible.get(&k).cloned() else {
            return Err(io_error(path, "no such file"));
        };
        if !s.schedule.drop_syncs {
            s.durable.insert(k, content);
        }
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> StoreResult<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(dir));
        }
        if s.charge(1) == 0 {
            return Err(FaultState::crash_error(dir));
        }
        if s.schedule.drop_syncs {
            return Ok(());
        }
        let pending: Vec<PendingOp> = s.pending.drain(..).collect();
        for op in pending {
            match op {
                PendingOp::Rename(from, to) => {
                    if let Some(bytes) = s.durable.remove(&from) {
                        s.durable.insert(to, bytes);
                    }
                }
                PendingOp::Remove(name) => {
                    s.durable.remove(&name);
                }
            }
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> StoreResult<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(from));
        }
        if s.charge(1) == 0 {
            return Err(FaultState::crash_error(from));
        }
        let from_key = key(from);
        let to_key = key(to);
        let Some(bytes) = s.visible.remove(&from_key) else {
            return Err(io_error(from, "no such file"));
        };
        s.visible.insert(to_key.clone(), bytes);
        s.pending.push(PendingOp::Rename(from_key, to_key));
        Ok(())
    }

    fn remove(&self, path: &Path) -> StoreResult<()> {
        let mut s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(path));
        }
        if s.charge(1) == 0 {
            return Err(FaultState::crash_error(path));
        }
        let k = key(path);
        if s.visible.remove(&k).is_none() {
            return Err(io_error(path, "no such file"));
        }
        s.pending.push(PendingOp::Remove(k));
        Ok(())
    }

    fn list(&self, dir: &Path) -> StoreResult<Vec<String>> {
        let s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(dir));
        }
        let mut names: Vec<String> = s
            .visible
            .keys()
            .filter_map(|k| {
                let path = Path::new(k);
                (path.parent() == Some(dir))
                    .then(|| path.file_name())
                    .flatten()
                    .map(|n| n.to_string_lossy().into_owned())
            })
            .collect();
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.lock();
        !s.crashed && s.visible.contains_key(&key(path))
    }

    fn create_dir_all(&self, _dir: &Path) -> StoreResult<()> {
        let s = self.lock();
        if s.crashed {
            return Err(FaultState::crash_error(_dir));
        }
        Ok(())
    }
}

/// The parent directory of a path, for [`Vfs::sync_dir`] after a rename
/// (an empty parent means the current directory).
pub(crate) fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn std_vfs_round_trips_and_lists() {
        let dir = std::env::temp_dir().join("gbd-store-vfs-test");
        let vfs = StdVfs;
        vfs.create_dir_all(&dir).unwrap();
        let file = dir.join("a.bin");
        vfs.write(&file, b"hello").unwrap();
        vfs.append(&file, b" world!").unwrap();
        vfs.truncate(&file, 11).unwrap();
        vfs.sync(&file).unwrap();
        assert_eq!(vfs.read(&file).unwrap(), b"hello world");
        assert!(vfs.exists(&file));
        let renamed = dir.join("b.bin");
        vfs.rename(&file, &renamed).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert!(!vfs.exists(&file));
        assert!(vfs.list(&dir).unwrap().contains(&"b.bin".to_string()));
        vfs.remove(&renamed).unwrap();
        assert!(matches!(vfs.read(&renamed), Err(StoreError::Io { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsynced_data_does_not_survive_a_power_cycle() {
        let vfs = FaultVfs::new();
        vfs.write(&p("f"), b"synced").unwrap();
        vfs.sync(&p("f")).unwrap();
        vfs.append(&p("f"), b" lost").unwrap();
        assert_eq!(vfs.read(&p("f")).unwrap(), b"synced lost");
        vfs.power_cycle();
        assert_eq!(vfs.read(&p("f")).unwrap(), b"synced");
    }

    #[test]
    fn overwrite_destroys_the_durable_image_eagerly() {
        let vfs = FaultVfs::new();
        vfs.write(&p("f"), b"synced contents").unwrap();
        vfs.sync(&p("f")).unwrap();
        // Rewriting in place: the O_TRUNC may hit the medium before the
        // new bytes are synced, so a crash now loses *both* versions.
        vfs.write(&p("f"), b"synced con").unwrap();
        vfs.power_cycle();
        assert_eq!(
            vfs.read(&p("f")).unwrap(),
            b"",
            "overwrite emptied the durable image"
        );
    }

    #[test]
    fn truncate_preserves_the_durable_prefix() {
        let vfs = FaultVfs::new();
        vfs.write(&p("f"), b"synced contents").unwrap();
        vfs.sync(&p("f")).unwrap();
        vfs.truncate(&p("f"), 10).unwrap();
        assert_eq!(vfs.read(&p("f")).unwrap(), b"synced con");
        vfs.power_cycle();
        // The shortening is destructive (durable tail gone at once), but
        // the prefix survives — unlike an in-place rewrite.
        assert_eq!(vfs.read(&p("f")).unwrap(), b"synced con");
        // Zero-extension is visible immediately but durable only on sync.
        vfs.truncate(&p("f"), 12).unwrap();
        assert_eq!(vfs.read(&p("f")).unwrap(), b"synced con\0\0");
        vfs.power_cycle();
        assert_eq!(vfs.read(&p("f")).unwrap(), b"synced con");
        assert!(vfs.truncate(&p("missing"), 0).is_err());
    }

    #[test]
    fn rename_needs_a_directory_sync_to_be_durable() {
        let vfs = FaultVfs::new();
        let dir = p("d");
        vfs.write(&dir.join("old"), b"x").unwrap();
        vfs.sync(&dir.join("old")).unwrap();
        vfs.rename(&dir.join("old"), &dir.join("new")).unwrap();
        // No sync_dir: the rename is lost on power loss.
        vfs.power_cycle();
        assert!(vfs.exists(&dir.join("old")));
        assert!(!vfs.exists(&dir.join("new")));
        // With sync_dir it sticks.
        vfs.rename(&dir.join("old"), &dir.join("new")).unwrap();
        vfs.sync_dir(&dir).unwrap();
        vfs.power_cycle();
        assert!(!vfs.exists(&dir.join("old")));
        assert_eq!(vfs.read(&dir.join("new")).unwrap(), b"x");
    }

    #[test]
    fn crash_budget_tears_the_boundary_write() {
        let vfs = FaultVfs::new();
        vfs.arm(FaultSchedule::crash_after(4));
        assert!(vfs.append(&p("w"), b"ab").is_ok());
        // This write crosses the budget: 2 more bytes fit, the rest tears.
        assert!(vfs.append(&p("w"), b"cdef").is_err());
        assert!(vfs.crashed());
        // Every subsequent operation fails.
        assert!(vfs.read(&p("w")).is_err());
        assert!(vfs.sync(&p("w")).is_err());
        vfs.arm(FaultSchedule::default());
        assert_eq!(vfs.read(&p("w")).unwrap(), b"abcd");
    }

    #[test]
    fn torn_garbage_fills_the_remainder_deterministically() {
        let run = || {
            let vfs = FaultVfs::new();
            vfs.arm(FaultSchedule {
                crash_after_bytes: Some(2),
                torn_garbage: true,
                seed: 7,
                ..FaultSchedule::default()
            });
            let _ = vfs.append(&p("g"), b"abcdef");
            vfs.arm(FaultSchedule::default());
            vfs.read(&p("g")).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 6, "garbage preserves the write length");
        assert_eq!(&a[..2], b"ab");
        assert_ne!(&a[2..], b"cdef", "remainder is garbage");
        assert_eq!(a, b, "garbage is deterministic");
    }

    #[test]
    fn dropped_syncs_report_success_but_persist_nothing() {
        let vfs = FaultVfs::new();
        vfs.arm(FaultSchedule {
            drop_syncs: true,
            ..FaultSchedule::default()
        });
        vfs.write(&p("f"), b"data").unwrap();
        vfs.sync(&p("f")).unwrap();
        vfs.power_cycle();
        assert!(!vfs.exists(&p("f")), "the lying sync persisted nothing");
    }

    #[test]
    fn persist_unsynced_keeps_everything_including_renames() {
        let vfs = FaultVfs::new();
        vfs.arm(FaultSchedule {
            persist_unsynced: true,
            ..FaultSchedule::default()
        });
        vfs.write(&p("f"), b"never synced").unwrap();
        vfs.rename(&p("f"), &p("g")).unwrap();
        vfs.power_cycle();
        assert_eq!(vfs.read(&p("g")).unwrap(), b"never synced");
    }

    #[test]
    fn bit_flips_are_seeded_and_hit_the_durable_image() {
        let run = |seed| {
            let vfs = FaultVfs::new();
            vfs.write(&p("f"), &[0u8; 64]).unwrap();
            vfs.sync(&p("f")).unwrap();
            vfs.arm(FaultSchedule {
                flip_bits: 3,
                seed,
                ..FaultSchedule::default()
            });
            vfs.power_cycle();
            vfs.read(&p("f")).unwrap()
        };
        let a = run(1);
        assert_eq!(a, run(1), "same seed, same flips");
        assert_ne!(a, vec![0u8; 64], "bits actually flipped");
        let flipped: u32 = a.iter().map(|b| b.count_ones()).sum();
        assert!(flipped <= 3);
    }

    #[test]
    fn corrupt_flips_a_targeted_byte() {
        let vfs = FaultVfs::new();
        vfs.write(&p("f"), b"abc").unwrap();
        vfs.sync(&p("f")).unwrap();
        assert!(vfs.corrupt(&p("f"), 1, 0xFF));
        assert_eq!(vfs.read(&p("f")).unwrap()[1], b'b' ^ 0xFF);
        assert!(!vfs.corrupt(&p("f"), 99, 1), "out of range reports false");
        assert!(!vfs.corrupt(&p("missing"), 0, 1));
    }

    #[test]
    fn charged_bytes_count_data_and_metadata() {
        let vfs = FaultVfs::new();
        vfs.write(&p("f"), b"1234").unwrap(); // 4
        vfs.sync(&p("f")).unwrap(); // 1
        vfs.rename(&p("f"), &p("g")).unwrap(); // 1
        vfs.sync_dir(&p("")).unwrap(); // 1
        assert_eq!(vfs.bytes_charged(), 7);
    }

    #[test]
    fn clones_share_state() {
        let a = FaultVfs::new();
        let b = a.clone();
        a.write(&p("f"), b"shared").unwrap();
        assert_eq!(b.read(&p("f")).unwrap(), b"shared");
    }

    #[test]
    fn missing_files_error_without_panicking() {
        let vfs = FaultVfs::new();
        assert!(vfs.read(&p("nope")).is_err());
        assert!(vfs.sync(&p("nope")).is_err());
        assert!(vfs.rename(&p("nope"), &p("x")).is_err());
        assert!(vfs.remove(&p("nope")).is_err());
        assert!(!vfs.exists(&p("nope")));
        assert!(vfs.list(&p("empty-dir")).unwrap().is_empty());
    }

    #[test]
    fn parent_dir_falls_back_to_the_current_directory() {
        assert_eq!(parent_dir(Path::new("a/b.snap")), PathBuf::from("a"));
        assert_eq!(parent_dir(Path::new("b.snap")), PathBuf::from("."));
    }
}
