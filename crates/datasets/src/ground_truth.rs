//! Ground-truth edit distances between query graphs and database graphs.
//!
//! Effectiveness experiments (precision / recall / F1, Figures 10–21 and
//! 31–42) need to know, for every (query, database graph) pair, whether the
//! exact GED is within the threshold τ̂. Exact GED is NP-hard, so — exactly
//! like the paper's synthetic evaluation — the datasets in this crate are
//! constructed so that the answer is known:
//!
//! * pairs from the same Appendix-I family have a *known exact* GED,
//! * pairs from different families are constructed to be provably farther
//!   than the largest threshold of interest (their vertex-label multisets are
//!   disjoint, so the cheap label lower bound already exceeds it).

use std::collections::HashMap;

/// Known relationship between a query and a database graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnownDistance {
    /// The exact GED is known (same generator family).
    Exact(usize),
    /// The exact GED is unknown but provably at least this large
    /// (different families; the bound comes from the label lower bound).
    AtLeast(usize),
}

/// Ground-truth table for a dataset: `(query index, graph index) → distance`.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    entries: HashMap<(usize, usize), KnownDistance>,
}

impl GroundTruth {
    /// Creates an empty table.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Records the known distance for a pair.
    pub fn insert(&mut self, query: usize, graph: usize, distance: KnownDistance) {
        self.entries.insert((query, graph), distance);
    }

    /// Looks up the known distance for a pair.
    pub fn get(&self, query: usize, graph: usize) -> Option<KnownDistance> {
        self.entries.get(&(query, graph)).copied()
    }

    /// Returns whether `GED(query, graph) ≤ tau`, if decidable from the table.
    pub fn is_similar(&self, query: usize, graph: usize, tau: usize) -> Option<bool> {
        match self.get(query, graph)? {
            KnownDistance::Exact(d) => Some(d <= tau),
            KnownDistance::AtLeast(bound) => {
                if bound > tau {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }

    /// Indices of database graphs that are similar to `query` under `tau`
    /// (the ground-truth answer set of the similarity search problem).
    pub fn positives(&self, query: usize, tau: usize, database_size: usize) -> Vec<usize> {
        (0..database_size)
            .filter(|&g| self.is_similar(query, g, tau) == Some(true))
            .collect()
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no pair has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_entries_decide_similarity() {
        let mut gt = GroundTruth::new();
        gt.insert(0, 1, KnownDistance::Exact(3));
        assert_eq!(gt.is_similar(0, 1, 3), Some(true));
        assert_eq!(gt.is_similar(0, 1, 2), Some(false));
        assert_eq!(gt.is_similar(0, 2, 5), None);
    }

    #[test]
    fn lower_bound_entries_only_decide_dissimilarity() {
        let mut gt = GroundTruth::new();
        gt.insert(0, 1, KnownDistance::AtLeast(20));
        assert_eq!(gt.is_similar(0, 1, 10), Some(false));
        assert_eq!(gt.is_similar(0, 1, 25), None);
    }

    #[test]
    fn positives_enumerate_similar_graphs() {
        let mut gt = GroundTruth::new();
        gt.insert(0, 0, KnownDistance::Exact(0));
        gt.insert(0, 1, KnownDistance::Exact(4));
        gt.insert(0, 2, KnownDistance::AtLeast(50));
        gt.insert(0, 3, KnownDistance::Exact(10));
        assert_eq!(gt.positives(0, 5, 4), vec![0, 1]);
        assert_eq!(gt.positives(0, 10, 4), vec![0, 1, 3]);
        assert_eq!(gt.len(), 4);
        assert!(!gt.is_empty());
    }
}
