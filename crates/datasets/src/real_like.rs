//! Real-dataset substitutes (AIDS-like, Fingerprint-like, GREC-like,
//! AASD-like).
//!
//! Each substitute is a union of *clusters*. A cluster is an Appendix-I
//! known-GED family: all members derive from one template by modifying edges
//! adjacent to a modification center, so intra-cluster GEDs are known
//! exactly. Different clusters are relabelled into disjoint label ranges, so
//! any cross-cluster pair is provably farther apart than the largest
//! similarity threshold used in the paper (`τ̂ ≤ 10`): with disjoint vertex
//! alphabets the label lower bound already equals `max(|V1|, |V2|)`.
//!
//! The combination gives complete ground truth for precision / recall / F1
//! without a single NP-hard exact GED computation, while matching the
//! profile's graph sizes, degrees, label-alphabet sizes and scale-freeness.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gbd_graph::known_ged::ModificationMode;
use gbd_graph::{
    GeneratorConfig, Graph, GraphError, KnownGedConfig, KnownGedFamily, Label, LabelAlphabets,
    LabelDistribution,
};

use crate::dataset::LabeledDataset;
use crate::ground_truth::{GroundTruth, KnownDistance};
use crate::profile::DatasetProfile;

/// Width of the label-id range reserved for each cluster.
const CLUSTER_LABEL_STRIDE: u32 = 1_000_000;

/// Configuration for generating a real-dataset substitute.
#[derive(Debug, Clone)]
pub struct RealLikeConfig {
    /// Statistical profile (Table III row).
    pub profile: DatasetProfile,
    /// Multiplier on the profile's database / query counts (1.0 = paper
    /// scale; experiments default to a smaller value).
    pub scale: f64,
    /// Number of members per cluster (database members plus query members).
    pub cluster_size: usize,
    /// Largest intra-cluster GED the generator aims for; clamped per cluster
    /// by the achievable modification-center degree.
    pub max_known_ged: usize,
    /// How family members are derived from their template.
    pub mode: ModificationMode,
    /// RNG seed (the whole dataset is reproducible).
    pub seed: u64,
}

impl RealLikeConfig {
    /// Default configuration for a profile at the given scale.
    pub fn new(profile: DatasetProfile, scale: f64) -> Self {
        RealLikeConfig {
            profile,
            scale,
            cluster_size: 16,
            max_known_ged: 12,
            mode: ModificationMode::RelabelEdges,
            seed: 0xACE1,
        }
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the modification mode.
    pub fn with_mode(mut self, mode: ModificationMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Remaps every label of `graph` into the cluster's private id range,
/// preserving equality/distinctness of labels within the cluster.
fn remap_into_cluster_range(
    graph: &Graph,
    cluster: usize,
    vertex_map: &mut HashMap<Label, Label>,
    edge_map: &mut HashMap<Label, Label>,
) -> Graph {
    let vertex_base = cluster as u32 * CLUSTER_LABEL_STRIDE;
    let edge_base = vertex_base + CLUSTER_LABEL_STRIDE / 2;
    let mut out = Graph::with_capacity(graph.vertex_count());
    if let Some(name) = graph.name() {
        out.set_name(name);
    }
    for v in graph.vertices() {
        let old = graph.vertex_label(v).expect("vertex from same graph");
        let next_id = vertex_base + vertex_map.len() as u32;
        let new = *vertex_map.entry(old).or_insert(Label::new(next_id));
        out.add_vertex(new);
    }
    for (key, old) in graph.edges() {
        let next_id = edge_base + edge_map.len() as u32;
        let new = *edge_map.entry(old).or_insert(Label::new(next_id));
        out.add_edge(key.u, key.v, new)
            .expect("edges copied from a valid graph");
    }
    out
}

/// Generates a real-dataset substitute according to `config`.
pub fn generate_real_like(config: &RealLikeConfig) -> Result<LabeledDataset, GraphError> {
    let profile = config.profile.clone().scaled(config.scale);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total_needed = profile.database_size + profile.query_count;
    let cluster_size = config.cluster_size.max(2);
    let cluster_count = total_needed.div_ceil(cluster_size);
    // Queries are spread over the clusters round-robin so every cluster can
    // contribute both database graphs and queries.
    let mut graphs: Vec<Graph> = Vec::with_capacity(profile.database_size);
    let mut queries: Vec<Graph> = Vec::with_capacity(profile.query_count);
    // (cluster id, member id) bookkeeping for ground-truth construction.
    let mut graph_origin: Vec<(usize, usize)> = Vec::new();
    let mut query_origin: Vec<(usize, usize)> = Vec::new();
    let mut families: Vec<KnownGedFamily> = Vec::with_capacity(cluster_count);

    for cluster in 0..cluster_count {
        let min_vertices = (profile.vertices / 2).max(6);
        let vertices = rng.gen_range(min_vertices..=profile.vertices.max(min_vertices + 1));
        let center_degree = config.max_known_ged.min(vertices.saturating_sub(2)).max(2);
        let base = GeneratorConfig::new(vertices, profile.average_degree)
            .with_scale_free(profile.scale_free)
            .with_alphabets(LabelAlphabets::new(
                profile.vertex_labels,
                profile.edge_labels,
            ))
            .with_vertex_distribution(LabelDistribution::Zipf(1.0))
            .with_edge_distribution(LabelDistribution::Uniform);
        let family_cfg = KnownGedConfig::new(base, center_degree, cluster_size, center_degree)
            .with_mode(config.mode);
        let family = KnownGedFamily::generate(&family_cfg, &mut rng)?;

        let mut vertex_map = HashMap::new();
        let mut edge_map = HashMap::new();
        for (member_idx, member) in family.members().iter().enumerate() {
            let mut remapped =
                remap_into_cluster_range(member.graph(), cluster, &mut vertex_map, &mut edge_map);
            remapped.set_name(format!("{}-c{}-m{}", profile.name, cluster, member_idx));
            // The last member of every cluster becomes a query until the
            // query budget is exhausted; everything else goes to the database.
            let wants_query =
                queries.len() < profile.query_count && member_idx + 1 == family.members().len();
            if wants_query {
                query_origin.push((cluster, member_idx));
                queries.push(remapped);
            } else if graphs.len() < profile.database_size {
                graph_origin.push((cluster, member_idx));
                graphs.push(remapped);
            }
        }
        families.push(family);
    }

    // Top up queries from the first clusters if some budget remains (can
    // happen when the query count exceeds the cluster count).
    let mut cluster_cursor = 0usize;
    while queries.len() < profile.query_count && !graphs.is_empty() {
        // Reuse a database graph's cluster by cloning its template-derived
        // sibling: simply duplicate an existing database graph as a query
        // (GED 0 to itself, known distances to its cluster).
        let idx = cluster_cursor % graphs.len();
        queries.push(graphs[idx].clone());
        query_origin.push(graph_origin[idx]);
        cluster_cursor += 1;
    }

    // Ground truth.
    let mut ground_truth = GroundTruth::new();
    for (qi, &(q_cluster, q_member)) in query_origin.iter().enumerate() {
        for (gi, &(g_cluster, g_member)) in graph_origin.iter().enumerate() {
            if q_cluster == g_cluster {
                let d = families[q_cluster].known_ged(q_member, g_member);
                ground_truth.insert(qi, gi, KnownDistance::Exact(d));
            } else {
                let bound = queries[qi].vertex_count().max(graphs[gi].vertex_count());
                ground_truth.insert(qi, gi, KnownDistance::AtLeast(bound));
            }
        }
    }

    let dataset = LabeledDataset {
        name: format!("{}-like", profile.name),
        alphabets: LabelAlphabets::new(profile.vertex_labels, profile.edge_labels),
        graphs,
        queries,
        ground_truth,
    };
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_ged::label_lower_bound;

    fn tiny(profile: DatasetProfile) -> RealLikeConfig {
        RealLikeConfig {
            cluster_size: 8,
            max_known_ged: 8,
            ..RealLikeConfig::new(profile, 0.02)
        }
    }

    #[test]
    fn generates_the_requested_counts() {
        let cfg = tiny(DatasetProfile::fingerprint());
        let ds = generate_real_like(&cfg).unwrap();
        let profile = cfg.profile.scaled(cfg.scale);
        assert_eq!(ds.database_size(), profile.database_size);
        assert_eq!(ds.query_count(), profile.query_count);
        assert_eq!(ds.ground_truth.len(), ds.database_size() * ds.query_count());
    }

    #[test]
    fn generation_is_reproducible_for_a_fixed_seed() {
        let cfg = tiny(DatasetProfile::grec());
        let a = generate_real_like(&cfg).unwrap();
        let b = generate_real_like(&cfg).unwrap();
        assert_eq!(a.database_size(), b.database_size());
        for (ga, gb) in a.graphs.iter().zip(&b.graphs) {
            assert_eq!(ga.vertex_count(), gb.vertex_count());
            assert_eq!(ga.edge_count(), gb.edge_count());
        }
    }

    #[test]
    fn intra_cluster_distances_are_within_the_configured_budget() {
        let cfg = tiny(DatasetProfile::aids());
        let ds = generate_real_like(&cfg).unwrap();
        let mut exact_seen = 0usize;
        for q in 0..ds.query_count() {
            for g in 0..ds.database_size() {
                if let Some(KnownDistance::Exact(d)) = ds.ground_truth.get(q, g) {
                    exact_seen += 1;
                    assert!(d <= cfg.max_known_ged, "known GED {d} exceeds budget");
                }
            }
        }
        assert!(
            exact_seen > 0,
            "every query should have same-cluster graphs"
        );
    }

    #[test]
    fn cross_cluster_pairs_are_provably_far() {
        // The recorded lower bound must itself be justified by the cheap
        // label lower bound (disjoint label ranges across clusters).
        let cfg = tiny(DatasetProfile::grec());
        let ds = generate_real_like(&cfg).unwrap();
        let mut checked = 0usize;
        'outer: for q in 0..ds.query_count() {
            for g in 0..ds.database_size() {
                if let Some(KnownDistance::AtLeast(bound)) = ds.ground_truth.get(q, g) {
                    assert!(bound > 10, "cross-cluster bound {bound} must exceed τ̂ ≤ 10");
                    let lb = label_lower_bound(&ds.queries[q], &ds.graphs[g]);
                    assert!(
                        lb >= bound,
                        "label lower bound {lb} does not justify recorded bound {bound}"
                    );
                    checked += 1;
                    if checked > 20 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(checked > 0, "expected at least one cross-cluster pair");
    }

    #[test]
    fn queries_have_similar_graphs_at_small_thresholds() {
        let cfg = tiny(DatasetProfile::aids());
        let ds = generate_real_like(&cfg).unwrap();
        let any_positive = (0..ds.query_count()).any(|q| {
            !ds.ground_truth
                .positives(q, 10, ds.database_size())
                .is_empty()
        });
        assert!(
            any_positive,
            "at τ̂ = 10 some query must have a non-empty answer set"
        );
    }

    #[test]
    fn alphabet_sizes_reflect_the_profile_per_cluster() {
        let cfg = tiny(DatasetProfile::fingerprint());
        let ds = generate_real_like(&cfg).unwrap();
        // Each cluster re-labels into a private range, so the global count is
        // roughly clusters × profile alphabet; the recorded (per-domain)
        // alphabets stay at the profile values used by the model.
        assert_eq!(ds.alphabets.vertex_labels, cfg.profile.vertex_labels);
        assert_eq!(ds.alphabets.edge_labels, cfg.profile.edge_labels);
        let computed = ds.computed_alphabets();
        assert!(computed.vertex_labels >= cfg.profile.vertex_labels);
    }

    #[test]
    fn database_graphs_look_like_the_profile() {
        let cfg = tiny(DatasetProfile::aids());
        let ds = generate_real_like(&cfg).unwrap();
        let stats = ds.stats();
        assert!(stats.max_vertices <= cfg.profile.vertices + 1);
        assert!(stats.average_degree > 1.0 && stats.average_degree < 5.0);
    }
}
