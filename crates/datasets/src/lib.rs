//! # gbd-datasets — dataset substitutes with ground-truth GEDs
//!
//! The paper evaluates on four real datasets (AIDS, Fingerprint, GREC, AASD
//! — Table III) and two synthetic families (Syn-1, Syn-2 — Appendix I). The
//! real datasets are not redistributable here, so this crate provides
//! *substitutes* that match their Table-III statistics and — crucially —
//! carry complete ground truth for the similarity-search experiments:
//!
//! * [`profile`] — the Table III rows as [`DatasetProfile`]s,
//! * [`real_like`] — cluster-structured substitutes built from Appendix-I
//!   known-GED families with provably-far cross-cluster pairs,
//! * [`synthetic`] — the Syn-1 / Syn-2 large-graph families,
//! * [`ground_truth`] — the known-distance bookkeeping,
//! * [`dataset`] — the [`LabeledDataset`] container consumed by the
//!   experiment harness.
//!
//! See DESIGN.md §5 for the substitution rationale.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod ground_truth;
pub mod profile;
pub mod real_like;
pub mod synthetic;

pub use dataset::LabeledDataset;
pub use ground_truth::{GroundTruth, KnownDistance};
pub use profile::DatasetProfile;
pub use real_like::{generate_real_like, RealLikeConfig};
pub use synthetic::{generate_synthetic, SyntheticConfig, SyntheticDataset, SyntheticSubset};
