//! The in-memory representation of one experimental dataset.

use gbd_graph::{DatasetStats, Graph, LabelAlphabets};

use crate::ground_truth::GroundTruth;

/// A dataset: database graphs, query graphs, ground truth and label
/// alphabets — everything an experiment needs.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// Dataset name (e.g. "AIDS-like").
    pub name: String,
    /// The database `D`.
    pub graphs: Vec<Graph>,
    /// The query set `Q`.
    pub queries: Vec<Graph>,
    /// Known (query, graph) distances.
    pub ground_truth: GroundTruth,
    /// Sizes of the vertex / edge label alphabets actually used.
    pub alphabets: LabelAlphabets,
}

impl LabeledDataset {
    /// Table-III style statistics of the database graphs.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(self.graphs.iter())
    }

    /// Number of database graphs `|D|`.
    pub fn database_size(&self) -> usize {
        self.graphs.len()
    }

    /// Number of query graphs `|Q|`.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Largest vertex count over database and query graphs (the `n` of the
    /// complexity analysis and the `ϕ` range of the GBD prior).
    pub fn max_vertices(&self) -> usize {
        self.graphs
            .iter()
            .chain(self.queries.iter())
            .map(Graph::vertex_count)
            .max()
            .unwrap_or(0)
    }

    /// Computes the label alphabets from the stored graphs (used to
    /// double-check the recorded value).
    pub fn computed_alphabets(&self) -> LabelAlphabets {
        let stats = DatasetStats::compute(self.graphs.iter().chain(self.queries.iter()));
        LabelAlphabets::new(stats.vertex_label_count, stats.edge_label_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::paper_examples::{figure1_g1, figure1_g2};

    #[test]
    fn accessors_report_sizes() {
        let (g1, _) = figure1_g1();
        let (g2, _) = figure1_g2();
        let ds = LabeledDataset {
            name: "toy".into(),
            graphs: vec![g1.clone(), g2.clone()],
            queries: vec![g1],
            ground_truth: GroundTruth::new(),
            alphabets: LabelAlphabets::new(3, 3),
        };
        assert_eq!(ds.database_size(), 2);
        assert_eq!(ds.query_count(), 1);
        assert_eq!(ds.max_vertices(), 4);
        assert_eq!(ds.stats().graph_count, 2);
        let computed = ds.computed_alphabets();
        assert_eq!(computed.vertex_labels, 3);
        assert_eq!(computed.edge_labels, 3);
    }
}
