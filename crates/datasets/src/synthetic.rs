//! Synthetic large-graph datasets (Syn-1 and Syn-2, Appendix I).
//!
//! The paper's Syn-1 (scale-free) and Syn-2 (non-scale-free) datasets consist
//! of subsets of graphs of a fixed size each (1K … 100K vertices), generated
//! so that pairwise GEDs inside a subset are known by construction. Here each
//! subset is one Appendix-I family: a template of the requested size plus
//! members derived by modifying center-adjacent edges, giving exact pairwise
//! distances up to the configured maximum (the paper evaluates thresholds up
//! to τ̂ = 30 on these datasets).
//!
//! The vertex counts are configurable so the experiment harness can use
//! laptop-scale sizes while sweeping the same axis as Figures 8–9 and 31–42.

use rand::rngs::StdRng;
use rand::SeedableRng;

use gbd_graph::known_ged::ModificationMode;
use gbd_graph::{GeneratorConfig, GraphError, KnownGedConfig, KnownGedFamily, LabelAlphabets};

use crate::dataset::LabeledDataset;
use crate::ground_truth::{GroundTruth, KnownDistance};

/// Configuration of one synthetic dataset (Syn-1 or Syn-2).
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Dataset name ("Syn-1" / "Syn-2").
    pub name: String,
    /// Vertex counts of the subsets (the paper uses 1K…100K; experiments
    /// default to laptop-scale sizes).
    pub subset_sizes: Vec<usize>,
    /// Database graphs per subset.
    pub graphs_per_subset: usize,
    /// Query graphs per subset.
    pub queries_per_subset: usize,
    /// Target average degree (the paper's Syn graphs have `d ≈ 9.5`).
    pub average_degree: f64,
    /// Scale-free (Syn-1) or uniform random (Syn-2) edge placement.
    pub scale_free: bool,
    /// Largest known intra-subset GED (the paper sweeps τ̂ up to 30).
    pub max_known_ged: usize,
    /// Label alphabet sizes.
    pub alphabets: LabelAlphabets,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Syn-1: scale-free graphs of the given sizes.
    pub fn syn1(subset_sizes: Vec<usize>) -> Self {
        SyntheticConfig {
            name: "Syn-1".into(),
            subset_sizes,
            graphs_per_subset: 10,
            queries_per_subset: 2,
            average_degree: 9.6,
            scale_free: true,
            max_known_ged: 32,
            alphabets: LabelAlphabets::new(10, 4),
            seed: 0x51,
        }
    }

    /// Syn-2: non-scale-free graphs of the given sizes.
    pub fn syn2(subset_sizes: Vec<usize>) -> Self {
        SyntheticConfig {
            name: "Syn-2".into(),
            scale_free: false,
            average_degree: 9.4,
            seed: 0x52,
            ..SyntheticConfig::syn1(subset_sizes)
        }
    }
}

/// One subset: graphs of a single size plus its own ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticSubset {
    /// Number of vertices of every graph in the subset.
    pub vertices: usize,
    /// The subset's database, queries and ground truth.
    pub dataset: LabeledDataset,
}

/// A synthetic dataset: one subset per requested size.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Dataset name.
    pub name: String,
    /// The subsets in the order of `subset_sizes`.
    pub subsets: Vec<SyntheticSubset>,
}

/// Generates a synthetic dataset.
pub fn generate_synthetic(config: &SyntheticConfig) -> Result<SyntheticDataset, GraphError> {
    let mut subsets = Vec::with_capacity(config.subset_sizes.len());
    for (subset_idx, &vertices) in config.subset_sizes.iter().enumerate() {
        let mut rng =
            StdRng::seed_from_u64(config.seed ^ (subset_idx as u64) << 32 ^ vertices as u64);
        let members = config.graphs_per_subset + config.queries_per_subset;
        let center_degree = config.max_known_ged.min(vertices.saturating_sub(2)).max(2);
        let base = GeneratorConfig::new(vertices, config.average_degree)
            .with_scale_free(config.scale_free)
            .with_alphabets(config.alphabets);
        // The pairwise GED between members i and j is |S_i Δ S_j| ≤
        // |S_i| + |S_j|, so capping per-member edits at half the budget keeps
        // every intra-subset distance within `max_known_ged`.
        let max_edits = (center_degree / 2).max(1);
        let family_cfg = KnownGedConfig::new(base, center_degree, members, max_edits)
            .with_mode(ModificationMode::RelabelEdges);
        let family = KnownGedFamily::generate(&family_cfg, &mut rng)?;

        let mut graphs = Vec::with_capacity(config.graphs_per_subset);
        let mut queries = Vec::with_capacity(config.queries_per_subset);
        let mut graph_members = Vec::new();
        let mut query_members = Vec::new();
        for (member_idx, member) in family.members().iter().enumerate() {
            let mut g = member.graph().clone();
            g.set_name(format!("{}-{}v-m{}", config.name, vertices, member_idx));
            if member_idx < config.graphs_per_subset {
                graph_members.push(member_idx);
                graphs.push(g);
            } else {
                query_members.push(member_idx);
                queries.push(g);
            }
        }
        let mut ground_truth = GroundTruth::new();
        for (qi, &qm) in query_members.iter().enumerate() {
            for (gi, &gm) in graph_members.iter().enumerate() {
                ground_truth.insert(qi, gi, KnownDistance::Exact(family.known_ged(qm, gm)));
            }
        }
        subsets.push(SyntheticSubset {
            vertices,
            dataset: LabeledDataset {
                name: format!("{}-{}v", config.name, vertices),
                graphs,
                queries,
                ground_truth,
                alphabets: config.alphabets,
            },
        });
    }
    Ok(SyntheticDataset {
        name: config.name.clone(),
        subsets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbd_graph::DatasetStats;

    fn tiny_config(scale_free: bool) -> SyntheticConfig {
        SyntheticConfig {
            graphs_per_subset: 4,
            queries_per_subset: 1,
            max_known_ged: 12,
            ..if scale_free {
                SyntheticConfig::syn1(vec![60, 120])
            } else {
                SyntheticConfig::syn2(vec![60, 120])
            }
        }
    }

    #[test]
    fn generates_one_subset_per_size() {
        let ds = generate_synthetic(&tiny_config(true)).unwrap();
        assert_eq!(ds.subsets.len(), 2);
        assert_eq!(ds.subsets[0].vertices, 60);
        assert_eq!(ds.subsets[1].vertices, 120);
        for s in &ds.subsets {
            assert_eq!(s.dataset.database_size(), 4);
            assert_eq!(s.dataset.query_count(), 1);
            for g in &s.dataset.graphs {
                assert_eq!(g.vertex_count(), s.vertices);
            }
        }
    }

    #[test]
    fn intra_subset_ground_truth_is_exact_and_bounded() {
        let cfg = tiny_config(true);
        let ds = generate_synthetic(&cfg).unwrap();
        for s in &ds.subsets {
            for g in 0..s.dataset.database_size() {
                match s.dataset.ground_truth.get(0, g) {
                    Some(KnownDistance::Exact(d)) => assert!(d <= cfg.max_known_ged),
                    other => panic!("expected exact ground truth, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn syn1_is_scale_free_and_syn2_is_not() {
        let sf = generate_synthetic(&tiny_config(true)).unwrap();
        let uni = generate_synthetic(&tiny_config(false)).unwrap();
        let sf_stats = DatasetStats::compute(sf.subsets[1].dataset.graphs.iter());
        let uni_stats = DatasetStats::compute(uni.subsets[1].dataset.graphs.iter());
        // The scale-free subset must have a markedly heavier degree tail.
        let sf_max: usize = sf.subsets[1]
            .dataset
            .graphs
            .iter()
            .map(|g| g.max_degree())
            .max()
            .unwrap();
        let uni_max: usize = uni.subsets[1]
            .dataset
            .graphs
            .iter()
            .map(|g| g.max_degree())
            .max()
            .unwrap();
        assert!(
            sf_max > uni_max,
            "scale-free max degree {sf_max} should exceed uniform {uni_max}"
        );
        assert!(sf_stats.average_degree > 6.0 && sf_stats.average_degree < 13.0);
        assert!(uni_stats.average_degree > 6.0 && uni_stats.average_degree < 13.0);
    }

    #[test]
    fn average_degree_matches_the_configuration() {
        let ds = generate_synthetic(&tiny_config(false)).unwrap();
        for s in &ds.subsets {
            let stats = DatasetStats::compute(s.dataset.graphs.iter());
            assert!(
                (stats.average_degree - 9.4).abs() < 1.5,
                "average degree {} too far from 9.4",
                stats.average_degree
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = generate_synthetic(&tiny_config(true)).unwrap();
        let b = generate_synthetic(&tiny_config(true)).unwrap();
        for (sa, sb) in a.subsets.iter().zip(&b.subsets) {
            assert_eq!(
                sa.dataset.graphs[0].edge_count(),
                sb.dataset.graphs[0].edge_count()
            );
        }
    }
}
