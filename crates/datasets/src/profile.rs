//! Dataset profiles mirroring Table III of the paper.
//!
//! The real datasets of the paper (AIDS, Fingerprint, GREC, AASD) are not
//! redistributable here, so each is replaced by a *profile*: the statistics
//! of Table III (number of graphs, number of queries, maximum graph size,
//! average degree, scale-freeness) plus label-alphabet sizes typical for the
//! domain. The generators of [`crate::real_like`] and [`crate::synthetic`]
//! consume these profiles, and a global `scale` knob shrinks the counts so
//! the full experiment suite runs on laptop-class hardware (DESIGN.md §5).

/// Statistical profile of a dataset (one row of Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name used in experiment tables.
    pub name: &'static str,
    /// Number of database graphs `|D|`.
    pub database_size: usize,
    /// Number of query graphs `|Q|`.
    pub query_count: usize,
    /// Typical number of vertices per graph (the paper reports the maximum
    /// `V_m`; generation targets a range `[vertices/2, vertices]`).
    pub vertices: usize,
    /// Target average degree `d`.
    pub average_degree: f64,
    /// Number of distinct vertex labels in the domain.
    pub vertex_labels: usize,
    /// Number of distinct edge labels in the domain.
    pub edge_labels: usize,
    /// Whether the degree distribution should be scale-free.
    pub scale_free: bool,
}

impl DatasetProfile {
    /// AIDS antiviral screen compounds (small molecules, skewed atom labels).
    pub fn aids() -> Self {
        DatasetProfile {
            name: "AIDS",
            database_size: 1896,
            query_count: 100,
            vertices: 40,
            average_degree: 2.1,
            vertex_labels: 20,
            edge_labels: 3,
            scale_free: true,
        }
    }

    /// Fingerprint minutiae graphs (small, sparse, few labels).
    pub fn fingerprint() -> Self {
        DatasetProfile {
            name: "Fingerprint",
            database_size: 2159,
            query_count: 114,
            vertices: 16,
            average_degree: 1.7,
            vertex_labels: 4,
            edge_labels: 4,
            scale_free: true,
        }
    }

    /// GREC symbol drawings (small, moderately labelled).
    pub fn grec() -> Self {
        DatasetProfile {
            name: "GREC",
            database_size: 1045,
            query_count: 55,
            vertices: 14,
            average_degree: 2.1,
            vertex_labels: 12,
            edge_labels: 6,
            scale_free: true,
        }
    }

    /// AIDS Antiviral Screen Data — the large molecule collection.
    pub fn aasd() -> Self {
        DatasetProfile {
            name: "AASD",
            database_size: 37995,
            query_count: 100,
            vertices: 45,
            average_degree: 2.1,
            vertex_labels: 26,
            edge_labels: 3,
            scale_free: true,
        }
    }

    /// The four real-dataset profiles in paper order.
    pub fn all_real() -> Vec<DatasetProfile> {
        vec![
            DatasetProfile::aids(),
            DatasetProfile::fingerprint(),
            DatasetProfile::grec(),
            DatasetProfile::aasd(),
        ]
    }

    /// Scales the dataset and query counts by `factor` (keeping at least one
    /// query and two database graphs) — used to shrink experiments to the
    /// available hardware while preserving every code path.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.database_size = ((self.database_size as f64 * factor).round() as usize).max(2);
        self.query_count = ((self.query_count as f64 * factor).round() as usize).max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table_iii_counts() {
        assert_eq!(DatasetProfile::aids().database_size, 1896);
        assert_eq!(DatasetProfile::fingerprint().database_size, 2159);
        assert_eq!(DatasetProfile::grec().database_size, 1045);
        assert_eq!(DatasetProfile::aasd().database_size, 37995);
        assert_eq!(DatasetProfile::aids().query_count, 100);
        assert_eq!(DatasetProfile::fingerprint().query_count, 114);
        assert_eq!(DatasetProfile::grec().query_count, 55);
        assert_eq!(DatasetProfile::aasd().query_count, 100);
        assert_eq!(DatasetProfile::all_real().len(), 4);
    }

    #[test]
    fn all_real_profiles_are_scale_free_with_table_iii_degrees() {
        for p in DatasetProfile::all_real() {
            assert!(p.scale_free, "{} should be scale-free", p.name);
            assert!(p.average_degree >= 1.5 && p.average_degree <= 2.5);
        }
    }

    #[test]
    fn scaling_shrinks_counts_but_keeps_minimums() {
        let scaled = DatasetProfile::aids().scaled(0.01);
        assert_eq!(scaled.database_size, 19);
        assert_eq!(scaled.query_count, 1);
        let tiny = DatasetProfile::grec().scaled(0.000001);
        assert_eq!(tiny.database_size, 2);
        assert_eq!(tiny.query_count, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_factor_is_rejected() {
        let _ = DatasetProfile::aids().scaled(0.0);
    }
}
